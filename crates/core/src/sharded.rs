//! Sharded walk execution: one engine lane per graph partition, walkers
//! migrating at shard boundaries through bounded hand-off queues
//! (DESIGN.md §11), with optional **parallel shard executors** — pinned
//! worker threads that overlap hand-off delivery with compute
//! (DESIGN.md §12).
//!
//! [`ShardedEngine`] runs a [`lightrw_graph::ShardedGraph`] — built by
//! [`lightrw_graph::partition_graph`] (see `lightrw_graph::partition`
//! for the placement strategies, including the walk-aware
//! `ShardStrategy::Walk`) or loaded from a packed sharded file
//! ([`lightrw_graph::load_packed_sharded`]) — behind the ordinary
//! [`WalkSession`] contract. Each shard owns a sequential step lane with
//! its own [`HotStepper`]; a walker whose step lands on a **ghost**
//! vertex (owned by another shard) is serialized into a hand-off record
//! and parked in a per-destination outbox until the outbox reaches the
//! flush budget or the local lane runs out of work.
//!
//! Two execution modes share that data model:
//!
//! - `shard_threads == 1` (default): the deterministic single-thread
//!   interleave of PR 8 — lanes sweep round-robin, outboxes flush at a
//!   round barrier.
//! - `shard_threads >= 2`: each executor thread owns `k / threads` shard
//!   lanes, pins itself via `lightrw_baseline::affinity`, and delivers
//!   hand-off batches over channels so a crossing overlaps with the
//!   other executors' compute. A quiescence protocol (an atomic count of
//!   live walkers; the executor that retires or parks the last one
//!   broadcasts `Quiesce`) replaces the sequential round-barrier exit.
//!   Paths are emitted on the session thread as completions stream in,
//!   so the non-`Send` [`WalkSink`] never crosses a thread.
//!
//! The three contracts that make all of this safe:
//!
//! - **RNG streams travel with the walker.** Every query gets its own
//!   [`SamplerStream`] (seed derived from the engine seed and the query
//!   index); the destination lane's stepper imports the stream before
//!   stepping, so a walk's draws are a pure function of its query — not
//!   of shard count, flush budget, thread count, or batch schedule.
//!   That is what makes the parallel executors **bit-identical** to the
//!   sequential interleave, and what the conformance and property
//!   suites pin.
//! - **Second-order hand-offs carry the previous row.** Node2Vec weights
//!   read the *previous* vertex's adjacency, which the destination shard
//!   does not store. The record ships the row (charged to the transfer
//!   model) and the lane arms it as a prev-row override
//!   ([`HotStepper::arm_prev_row`]) for the arrival step.
//! - **Emission is exactly-once and id-ordered** via the shared
//!   [`InOrderEmitter`] watermark, identical to the CPU engine's lanes.
//!
//! Hand-off batches are charged to the modelled interconnect (the PCIe
//! model of [`crate::pcie`]): each flush costs one link latency plus
//! `bytes / bandwidth`, with a record costing a fixed header plus four
//! bytes per shipped prev-row entry. [`WalkSession::model_seconds`]
//! reports the accumulated transfer seconds **plus** the measured lane
//! compute seconds, so cluster straggler accounting never treats a
//! sharded board as free compute. Hand-off and byte totals are
//! schedule-independent (walks are deterministic); flush counts and
//! transfer seconds depend on batch coalescing and may differ between
//! the sequential and parallel schedules.
//!
//! `k = 1` takes a dedicated sequential path that is **bit-identical**
//! to [`lightrw_walker::ReferenceEngine`]: one continuous stepper over
//! all queries, seeded with the engine seed (pinned by
//! `tests/sharded_execution.rs`).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::time::Instant;

use lightrw_baseline::{affinity, thread_clock};
use lightrw_graph::{partition_graph, Graph, ShardStrategy, ShardedGraph, VertexId};
use lightrw_rng::splitmix::{mix64, GOLDEN_GAMMA};
use lightrw_walker::{
    AnySampler, BatchProgress, HotStepper, InOrderEmitter, Query, QuerySet, SamplerKind,
    SamplerStream, StepOutcome, WalkApp, WalkEngine, WalkProgram, WalkSession, WalkSink, WalkState,
};

use crate::pcie::PcieBreakdown;
use crate::platform::U250_PLATFORM;

/// Serialized size of one hand-off record, excluding the optional
/// prev-row payload: query id (4), current and previous vertex (4 + 5),
/// step counters (4 + 4), restart-segment flag padding (1), and the
/// [`SamplerStream`] triple (24). Payload entries add four bytes each.
pub const HANDOFF_RECORD_BYTES: u64 = 40;

/// A partitioned-execution engine: one step lane per shard, bounded
/// hand-off queues between them, modelled transfer costs per flush,
/// and optionally parallel pinned shard executors.
pub struct ShardedEngine<'a> {
    sharded: ShardedGraph,
    app: &'a dyn WalkApp,
    sampler: SamplerKind,
    seed: u64,
    flush_budget: usize,
    /// Requested executor thread count: 1 = sequential interleave,
    /// 0 = one executor per shard, n = min(n, k) executors.
    shard_threads: usize,
    /// Provenance note surfaced through session diagnostics (e.g. "the
    /// packed partition was discarded and rebuilt in memory").
    partition_note: Option<String>,
}

impl<'a> ShardedEngine<'a> {
    /// Default hand-off coalescing budget: records buffered per
    /// (source, destination) shard pair before a flush is forced.
    /// Chosen so a flush amortizes the link latency over a few KiB of
    /// records while keeping in-flight walkers bounded (DESIGN.md §11).
    pub const DEFAULT_FLUSH_BUDGET: usize = 64;

    /// Wrap an already-partitioned graph (e.g. loaded from a packed
    /// sharded file).
    pub fn new(
        sharded: ShardedGraph,
        app: &'a dyn WalkApp,
        sampler: SamplerKind,
        seed: u64,
    ) -> Self {
        assert!(sharded.k() > 0, "sharded engine requires at least 1 shard");
        Self {
            sharded,
            app,
            sampler,
            seed,
            flush_budget: Self::DEFAULT_FLUSH_BUDGET,
            shard_threads: 1,
            partition_note: None,
        }
    }

    /// Partition `g` into `k` shards and build an engine over the result.
    pub fn partition(
        g: &Graph,
        k: usize,
        strategy: ShardStrategy,
        app: &'a dyn WalkApp,
        sampler: SamplerKind,
        seed: u64,
    ) -> Self {
        Self::new(partition_graph(g, k, strategy), app, sampler, seed)
    }

    /// Override the hand-off flush budget (clamped to at least 1).
    pub fn with_flush_budget(mut self, flush_budget: usize) -> Self {
        self.flush_budget = flush_budget.max(1);
        self
    }

    /// Set the executor thread count: `1` keeps the deterministic
    /// single-thread interleave, `0` spawns one pinned executor per
    /// shard, and any other value is capped at the shard count. Sampled
    /// walks are bit-identical across every setting.
    pub fn with_shard_threads(mut self, shard_threads: usize) -> Self {
        self.shard_threads = shard_threads;
        self
    }

    /// Attach a partition-provenance note, surfaced verbatim at the end
    /// of every session's `diagnostics()`.
    pub fn with_partition_note(mut self, note: impl Into<String>) -> Self {
        self.partition_note = Some(note.into());
        self
    }

    /// The partitioned graph this engine executes over.
    pub fn sharded(&self) -> &ShardedGraph {
        &self.sharded
    }

    /// Records buffered per shard pair before a forced flush.
    pub fn flush_budget(&self) -> usize {
        self.flush_budget
    }

    /// Requested executor thread count (raw: 0 = one per shard).
    pub fn shard_threads(&self) -> usize {
        self.shard_threads
    }
}

impl WalkEngine for ShardedEngine<'_> {
    fn label(&self) -> String {
        format!(
            "sharded(k={}, {}, {})",
            self.sharded.k(),
            self.sharded.strategy.name(),
            self.sampler.name()
        )
    }

    fn start_session<'s>(&'s self, queries: &QuerySet) -> Box<dyn WalkSession + 's> {
        let engine: &'s ShardedEngine<'s> = self;
        if self.sharded.k() == 1 {
            Box::new(SingleShardSession::new(engine, queries))
        } else {
            Box::new(MultiShardSession::new(engine, queries))
        }
    }

    /// One graph image per shard: a deployed sharded engine pushes each
    /// partition to its own executor.
    fn graph_images(&self) -> u64 {
        self.sharded.k() as u64
    }
}

// --- k = 1: the sequential fast path -------------------------------------

/// Degenerate single-shard session — a verbatim replay of the reference
/// engine's session loop (one continuous stepper, one query in flight),
/// so `--shards 1` is bit-identical to the unsharded reference backend.
struct SingleShardSession<'s> {
    graph: &'s Graph,
    app: &'s dyn WalkApp,
    stepper: HotStepper,
    program: WalkProgram,
    queries: Vec<Query>,
    qi: usize,
    path: Vec<VertexId>,
    st: WalkState,
    steps_done: u64,
    note: Option<&'s str>,
}

impl<'s> SingleShardSession<'s> {
    fn new(engine: &'s ShardedEngine<'s>, queries: &QuerySet) -> Self {
        let graph = &engine.sharded.shards[0].graph;
        let mut stepper = HotStepper::new(engine.app, engine.sampler, engine.seed);
        stepper.reserve(graph.max_degree() as usize);
        let program = queries.program().clone();
        let queries = queries.queries().to_vec();
        let mut path = Vec::new();
        let mut st = WalkState::start(0);
        if let Some(q) = queries.first() {
            path.reserve(q.length as usize + 1);
            path.push(q.start);
            st = WalkState::start(q.start);
        }
        Self {
            graph,
            app: engine.app,
            stepper,
            program,
            queries,
            qi: 0,
            path,
            st,
            steps_done: 0,
            note: engine.partition_note.as_deref(),
        }
    }

    fn finish_current(&mut self, sink: &mut dyn WalkSink) {
        sink.emit(self.qi as u32, &self.path);
        self.qi += 1;
        self.path.clear();
        if let Some(q) = self.queries.get(self.qi) {
            self.path.push(q.start);
            self.st = WalkState::start(q.start);
        }
    }
}

impl WalkSession for SingleShardSession<'_> {
    fn advance(&mut self, max_steps: u64, sink: &mut dyn WalkSink) -> BatchProgress {
        let budget = max_steps.max(1);
        let mut progress = BatchProgress::default();
        let mut attempts = 0u64;
        while attempts < budget && self.qi < self.queries.len() {
            let q = self.queries[self.qi];
            attempts += 1;
            let outcome = self.program.step_attempt(
                self.graph,
                self.app,
                &mut self.stepper,
                &q,
                &mut self.st,
            );
            let done = match outcome {
                StepOutcome::Moved { done, .. } | StepOutcome::Teleported { done, .. } => {
                    let v = outcome.appended(q.start).expect("advancing outcome");
                    self.path.push(v);
                    self.steps_done += 1;
                    progress.steps += 1;
                    done
                }
                StepOutcome::DeadEnd | StepOutcome::TargetAtStart => true,
            };
            if done {
                self.finish_current(sink);
                progress.paths_completed += 1;
            }
        }
        progress.finished = self.finished();
        progress
    }

    fn cancel(&mut self, sink: &mut dyn WalkSink) -> BatchProgress {
        let mut progress = BatchProgress::default();
        while self.qi < self.queries.len() {
            self.finish_current(sink);
            progress.paths_completed += 1;
        }
        progress.finished = true;
        progress
    }

    fn finished(&self) -> bool {
        self.qi >= self.queries.len()
    }

    fn steps_done(&self) -> u64 {
        self.steps_done
    }

    fn paths_completed(&self) -> usize {
        self.qi
    }

    fn diagnostics(&self) -> Option<String> {
        let mut d = "k=1 (sequential fast path)".to_string();
        if let Some(note) = self.note {
            d.push_str(", ");
            d.push_str(note);
        }
        Some(d)
    }
}

// --- k >= 2: lanes, outboxes and hand-offs -------------------------------

/// One in-flight walker: its program state, partial path, serialized RNG
/// stream, and (between hand-off and arrival step) the shipped prev-row
/// payload.
struct Walker {
    st: WalkState,
    path: Vec<VertexId>,
    stream: SamplerStream,
    /// Previous vertex's adjacency row, shipped with a second-order
    /// hand-off; armed as the stepper's prev-row override for exactly
    /// the arrival step.
    prev_row: Option<Vec<VertexId>>,
    done: bool,
}

/// Multi-shard session. With `shard_threads == 1`: a deterministic
/// round-robin over shard lanes with per-(source, destination) outboxes
/// flushed at the budget or at round end. With `shard_threads >= 2`:
/// pinned parallel executors with channel hand-off (DESIGN.md §12).
/// Both schedules sample bit-identical walks.
struct MultiShardSession<'s> {
    sharded: &'s ShardedGraph,
    app: &'s dyn WalkApp,
    program: WalkProgram,
    queries: Vec<Query>,
    /// One stepper per shard lane; streams are imported per attempt.
    steppers: Vec<HotStepper>,
    /// Runnable walkers parked on each shard (owner of their `cur`).
    runq: Vec<VecDeque<usize>>,
    /// Sequential-mode hand-off records awaiting a flush, indexed
    /// `src * k + dst` (unused by the parallel schedule, which keeps
    /// per-executor outboxes).
    outbox: Vec<Vec<usize>>,
    flush_budget: usize,
    /// Resolved executor count (1 = sequential interleave, else <= k).
    threads: usize,
    /// Walker slots; `None` only while a walker is out on an executor
    /// during a parallel `advance`.
    walkers: Vec<Option<Walker>>,
    emitter: InOrderEmitter,
    steps_done: u64,
    hand_offs: u64,
    flushes: u64,
    transfer_bytes: u64,
    transfer_s: f64,
    /// Measured wall seconds spent inside `advance` — the lane compute
    /// component of `model_seconds`.
    compute_s: f64,
    /// Executors that successfully pinned in the last parallel round.
    pinned: usize,
    note: Option<&'s str>,
}

impl<'s> MultiShardSession<'s> {
    fn new(engine: &'s ShardedEngine<'s>, queries: &QuerySet) -> Self {
        let sharded = &engine.sharded;
        let k = sharded.k();
        let threads = match engine.shard_threads {
            0 => k,
            t => t.min(k),
        };
        let max_degree = sharded
            .shards
            .iter()
            .map(|s| s.graph.max_degree())
            .max()
            .unwrap_or(0) as usize;
        let steppers = (0..k)
            .map(|_| {
                let mut st = HotStepper::new(engine.app, engine.sampler, engine.seed);
                st.reserve(max_degree);
                st
            })
            .collect();
        let qs = queries.queries().to_vec();
        let mut runq: Vec<VecDeque<usize>> = vec![VecDeque::new(); k];
        let walkers: Vec<Option<Walker>> = qs
            .iter()
            .enumerate()
            .map(|(qi, q)| {
                // Per-query stream: draws are a pure function of the
                // query, never of shard count or schedule.
                let stream_seed = mix64(engine.seed ^ (qi as u64 + 1).wrapping_mul(GOLDEN_GAMMA));
                runq[sharded.owner_of(q.start)].push_back(qi);
                let mut path = Vec::with_capacity(q.length as usize + 1);
                path.push(q.start);
                Some(Walker {
                    st: WalkState::start(q.start),
                    path,
                    stream: AnySampler::new(engine.sampler, stream_seed).export_stream(),
                    prev_row: None,
                    done: false,
                })
            })
            .collect();
        Self {
            sharded,
            app: engine.app,
            program: queries.program().clone(),
            queries: qs,
            steppers,
            runq,
            outbox: vec![Vec::new(); k * k],
            flush_budget: engine.flush_budget,
            threads,
            walkers,
            emitter: InOrderEmitter::new(queries.len()),
            steps_done: 0,
            hand_offs: 0,
            flushes: 0,
            transfer_bytes: 0,
            transfer_s: 0.0,
            compute_s: 0.0,
            pinned: 0,
            note: engine.partition_note.as_deref(),
        }
    }

    /// Deliver outbox `(s, t)` to shard `t`'s run queue, charging one
    /// modelled link transfer (latency + bytes / bandwidth) for the
    /// coalesced batch. Sequential schedule only.
    fn flush_pair(&mut self, s: usize, t: usize) {
        let k = self.sharded.k();
        let batch = std::mem::take(&mut self.outbox[s * k + t]);
        if batch.is_empty() {
            return;
        }
        let mut bytes = 0u64;
        for &w in &batch {
            let payload = self.walkers[w]
                .as_ref()
                .map_or(0, |wk| wk.prev_row.as_ref().map_or(0, |r| r.len()))
                as u64;
            bytes += HANDOFF_RECORD_BYTES + 4 * payload;
        }
        let link = PcieBreakdown::model(&U250_PLATFORM, bytes, 0.0, 0);
        self.transfer_s += link.upload_s;
        self.transfer_bytes += bytes;
        self.flushes += 1;
        self.runq[t].extend(batch);
    }

    /// Flush every non-empty outbox (round end / cancellation barrier).
    /// Returns how many walkers were delivered.
    fn flush_all(&mut self) -> usize {
        let k = self.sharded.k();
        let mut delivered = 0;
        for s in 0..k {
            for t in 0..k {
                delivered += self.outbox[s * k + t].len();
                self.flush_pair(s, t);
            }
        }
        delivered
    }

    /// The deterministic single-thread interleave (PR 8 schedule).
    fn advance_sequential(&mut self, budget: u64, sink: &mut dyn WalkSink) -> BatchProgress {
        let k = self.sharded.k();
        let mut progress = BatchProgress::default();
        let mut attempts = vec![0u64; k];
        loop {
            let mut worked = false;
            // One deterministic sweep: each lane steps its queue head
            // until the lane budget, a retirement, or a hand-off.
            for (s, lane_attempts) in attempts.iter_mut().enumerate() {
                while *lane_attempts < budget {
                    let Some(&w) = self.runq[s].front() else {
                        break;
                    };
                    worked = true;
                    *lane_attempts += 1;
                    let q = self.queries[w];
                    let g = &self.sharded.shards[s].graph;
                    let stepper = &mut self.steppers[s];
                    let wk = self.walkers[w].as_mut().expect("runnable walker in slot");
                    stepper.import_stream(&wk.stream);
                    if let Some(row) = wk.prev_row.take() {
                        stepper.arm_prev_row(&row);
                    }
                    let outcome = self
                        .program
                        .step_attempt(g, self.app, stepper, &q, &mut wk.st);
                    stepper.clear_prev_row();
                    wk.stream = stepper.export_stream();
                    let done = match outcome {
                        StepOutcome::Moved { done, .. } | StepOutcome::Teleported { done, .. } => {
                            let v = outcome.appended(q.start).expect("advancing outcome");
                            wk.path.push(v);
                            self.steps_done += 1;
                            progress.steps += 1;
                            done
                        }
                        StepOutcome::DeadEnd | StepOutcome::TargetAtStart => true,
                    };
                    if done {
                        wk.done = true;
                        self.runq[s].pop_front();
                        continue;
                    }
                    let t = self.sharded.owner_of(wk.st.cur);
                    if t != s {
                        // Hand-off: serialize the walker into the (s, t)
                        // outbox. Second-order apps ship the previous
                        // vertex's row — it lives on this shard, not the
                        // destination.
                        if self.app.second_order() {
                            if let Some(prev) = wk.st.prev {
                                wk.prev_row = Some(g.neighbors(prev).to_vec());
                            }
                        }
                        self.runq[s].pop_front();
                        self.hand_offs += 1;
                        self.outbox[s * k + t].push(w);
                        if self.outbox[s * k + t].len() >= self.flush_budget {
                            self.flush_pair(s, t);
                        }
                    }
                }
            }
            // Round barrier: deliver stragglers below the flush budget so
            // migrated walkers never starve, then emit at the watermark.
            let delivered = self.flush_all();
            progress.paths_completed += drain_ready(&mut self.emitter, &mut self.walkers, sink);
            if self.emitter.finished() || (!worked && delivered == 0) {
                break;
            }
        }
        progress
    }

    /// The parallel schedule: pinned executors, channel hand-off,
    /// quiescence termination. Walks are bit-identical to
    /// [`Self::advance_sequential`] because every walker carries its own
    /// RNG stream.
    fn advance_parallel(&mut self, budget: u64, sink: &mut dyn WalkSink) -> BatchProgress {
        let k = self.sharded.k();
        let threads = self.threads;
        let mut progress = BatchProgress::default();

        // Schedule: move every runnable walker out of its slot, grouped
        // by owning shard.
        let mut scheduled = 0usize;
        let mut shard_queues: Vec<VecDeque<(usize, Walker)>> = Vec::with_capacity(k);
        for q in &mut self.runq {
            let mut local = VecDeque::with_capacity(q.len());
            for wi in q.drain(..) {
                local.push_back((
                    wi,
                    self.walkers[wi].take().expect("runnable walker in slot"),
                ));
            }
            scheduled += local.len();
            shard_queues.push(local);
        }

        if scheduled > 0 {
            // Shard s runs on executor s % threads; executor-local lane
            // index is s / threads.
            let mut lanes_by_exec: Vec<Vec<ExecLane<'_>>> =
                (0..threads).map(|_| Vec::new()).collect();
            for ((s, stepper), queue) in self.steppers.iter_mut().enumerate().zip(shard_queues) {
                lanes_by_exec[s % threads].push(ExecLane {
                    shard: s,
                    graph: &self.sharded.shards[s].graph,
                    stepper,
                    runq: queue,
                    attempts: 0,
                });
            }

            let active = AtomicUsize::new(scheduled);
            let (txs, rxs): (Vec<Sender<ExecMsg>>, Vec<Receiver<ExecMsg>>) =
                (0..threads).map(|_| channel()).unzip();
            let (done_tx, done_rx) = channel::<Vec<Completion>>();

            let app = self.app;
            let program = &self.program;
            let queries: &[Query] = &self.queries;
            let sharded = self.sharded;
            let flush_budget = self.flush_budget;
            let walkers = &mut self.walkers;
            let runq = &mut self.runq;
            let emitter = &mut self.emitter;

            let mut round_stats: Vec<ExecStats> = Vec::with_capacity(threads);
            std::thread::scope(|scope| {
                let handles: Vec<_> = lanes_by_exec
                    .into_iter()
                    .zip(rxs)
                    .enumerate()
                    .map(|(e, (lanes, rx))| {
                        let ctx = ExecCtx {
                            exec: e,
                            threads,
                            k,
                            budget,
                            flush_budget,
                            app,
                            program,
                            queries,
                            sharded,
                            txs: txs.clone(),
                            done_tx: done_tx.clone(),
                            done_buf: RefCell::new(Vec::new()),
                            active: &active,
                        };
                        scope.spawn(move || run_executor(ctx, lanes, rx))
                    })
                    .collect();
                // The executors hold their own clones; dropping ours lets
                // channel disconnection double as a crash signal.
                drop(done_tx);
                drop(txs);
                // Collect completions on the session thread, emitting at
                // the watermark as they stream in — emission overlaps
                // with the executors' remaining compute, and the
                // non-Send sink never leaves this thread.
                let mut returned = 0usize;
                while returned < scheduled {
                    let batch = done_rx
                        .recv()
                        .expect("shard executor terminated without returning its walkers");
                    for c in batch {
                        walkers[c.wi] = Some(c.walker);
                        if let Some(shard) = c.parked_at {
                            runq[shard].push_back(c.wi);
                        }
                        returned += 1;
                    }
                    progress.paths_completed += drain_ready(emitter, walkers, sink);
                }
                for h in handles {
                    round_stats.push(h.join().expect("shard executor panicked"));
                }
            });

            self.pinned = round_stats.iter().filter(|s| s.pinned).count();
            // The round's compute clock is the straggler executor's busy
            // time: the overlapped duration, as a host with one core per
            // executor observes it (on a CI host with fewer cores the
            // wall clock serializes the executors, but each one's busy
            // time still measures its own share of the work).
            self.compute_s += round_stats.iter().map(|s| s.busy_s).fold(0.0f64, f64::max);
            for st in round_stats {
                progress.steps += st.steps;
                self.steps_done += st.steps;
                self.hand_offs += st.hand_offs;
                self.flushes += st.flushes;
                self.transfer_bytes += st.transfer_bytes;
                self.transfer_s += st.transfer_s;
            }
        }

        // Covers the nothing-scheduled case (every walker already done
        // but not yet emitted — e.g. a zero-progress advance call).
        progress.paths_completed += drain_ready(&mut self.emitter, &mut self.walkers, sink);
        progress
    }
}

/// Emit every ready path at the watermark (walker slots are `None` only
/// while out on an executor, and those are never `done`).
fn drain_ready(
    emitter: &mut InOrderEmitter,
    walkers: &mut [Option<Walker>],
    sink: &mut dyn WalkSink,
) -> usize {
    emitter.drain(sink, |id| match walkers[id].as_mut() {
        Some(w) if w.done => Some(std::mem::take(&mut w.path)),
        _ => None,
    })
}

impl WalkSession for MultiShardSession<'_> {
    fn advance(&mut self, max_steps: u64, sink: &mut dyn WalkSink) -> BatchProgress {
        let budget = max_steps.max(1);
        let mut progress = if self.threads >= 2 {
            // The parallel path accounts its own compute clock: the
            // straggler executor's busy time (modelled overlap).
            self.advance_parallel(budget, sink)
        } else {
            let t0 = Instant::now();
            let p = self.advance_sequential(budget, sink);
            self.compute_s += t0.elapsed().as_secs_f64();
            p
        };
        progress.finished = self.finished();
        progress
    }

    fn cancel(&mut self, sink: &mut dyn WalkSink) -> BatchProgress {
        let mut progress = BatchProgress::default();
        for q in &mut self.runq {
            q.clear();
        }
        for b in &mut self.outbox {
            b.clear();
        }
        for wk in self.walkers.iter_mut().flatten() {
            wk.done = true;
        }
        let walkers = &mut self.walkers;
        progress.paths_completed += self.emitter.drain(sink, |id| {
            Some(
                walkers[id]
                    .as_mut()
                    .map_or_else(Vec::new, |w| std::mem::take(&mut w.path)),
            )
        });
        progress.finished = true;
        progress
    }

    fn finished(&self) -> bool {
        self.emitter.finished()
    }

    fn steps_done(&self) -> u64 {
        self.steps_done
    }

    fn paths_completed(&self) -> usize {
        self.emitter.emitted()
    }

    /// Modelled interconnect seconds spent on hand-off flushes plus the
    /// compute clock — the board is never free compute in cluster
    /// straggler accounting. Sequential compute is the measured wall time
    /// inside `advance`; parallel compute is the straggler executor's
    /// busy time per round (the overlapped duration, independent of how
    /// many physical cores the host could actually grant).
    fn model_seconds(&self) -> Option<f64> {
        Some(self.transfer_s + self.compute_s)
    }

    fn diagnostics(&self) -> Option<String> {
        let mut d = format!(
            "k={} strategy={} threads={} pinned={} hand-offs={} flushes={} transfer-bytes={} transfer-s={:.9} compute-s={:.9}",
            self.sharded.k(),
            self.sharded.strategy.name(),
            self.threads,
            self.pinned,
            self.hand_offs,
            self.flushes,
            self.transfer_bytes,
            self.transfer_s,
            self.compute_s,
        );
        if let Some(note) = self.note {
            d.push_str(", ");
            d.push_str(note);
        }
        Some(d)
    }
}

// --- Parallel shard executors (DESIGN.md §12) -----------------------------

/// Channel message between executors: a coalesced hand-off batch bound
/// for one shard, or the quiescence broadcast that ends the round.
enum ExecMsg {
    Batch {
        shard: usize,
        walkers: Vec<(usize, Walker)>,
    },
    Quiesce,
}

/// A walker returning to the session thread: retired (`parked_at` is
/// `None`, the walk is complete) or parked (its lane's per-advance
/// budget ran out; it re-enters `runq[parked_at]` for the next advance).
struct Completion {
    wi: usize,
    walker: Walker,
    parked_at: Option<usize>,
}

/// Per-executor tallies folded into the session after the scoped join.
#[derive(Default)]
struct ExecStats {
    steps: u64,
    hand_offs: u64,
    flushes: u64,
    transfer_bytes: u64,
    transfer_s: f64,
    /// Seconds this executor spent with work in hand: its own thread CPU
    /// time (wall minus inbox-blocked time where the per-thread clock is
    /// unsupported). The session's parallel compute clock is the straggler
    /// executor's busy time — the overlapped duration a host with one core
    /// per executor would observe, which keeps the model clock meaningful
    /// on CI hosts with fewer cores than executors.
    busy_s: f64,
    pinned: bool,
}

/// One shard lane scheduled on an executor for a single advance round.
struct ExecLane<'a> {
    shard: usize,
    graph: &'a Graph,
    stepper: &'a mut HotStepper,
    runq: VecDeque<(usize, Walker)>,
    attempts: u64,
}

/// Everything an executor shares or owns for one advance round.
struct ExecCtx<'a> {
    exec: usize,
    threads: usize,
    k: usize,
    budget: u64,
    flush_budget: usize,
    app: &'a dyn WalkApp,
    program: &'a WalkProgram,
    queries: &'a [Query],
    sharded: &'a ShardedGraph,
    txs: Vec<Sender<ExecMsg>>,
    done_tx: Sender<Vec<Completion>>,
    done_buf: RefCell<Vec<Completion>>,
    active: &'a AtomicUsize,
}

/// Completions per message on the done channel. Retires and parks come
/// in floods (every advance-end parks whole run queues), so sending them
/// one channel message at a time costs more than the walking; batches
/// keep the session thread's wake-ups rare.
const COMPLETION_BATCH: usize = 256;

impl ExecCtx<'_> {
    /// Queue a walker for return to the session thread and decrement the
    /// live count; whoever retires or parks the last walker broadcasts
    /// `Quiesce` so every blocked executor unblocks and returns. The
    /// completion itself travels in a batch — flushed at
    /// [`COMPLETION_BATCH`], before this executor blocks, and at exit —
    /// so the walker is *counted* out immediately but *shipped* lazily.
    fn finish(&self, wi: usize, walker: Walker, parked_at: Option<usize>) {
        let mut buf = self.done_buf.borrow_mut();
        buf.push(Completion {
            wi,
            walker,
            parked_at,
        });
        if buf.len() >= COMPLETION_BATCH {
            let _ = self.done_tx.send(std::mem::take(&mut *buf));
        }
        drop(buf);
        if self.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            for tx in &self.txs {
                let _ = tx.send(ExecMsg::Quiesce);
            }
        }
    }

    /// Ship any buffered completions now. Must run before blocking on the
    /// inbox (the session thread may be waiting on exactly these walkers)
    /// and before the executor returns.
    fn flush_completions(&self) {
        let mut buf = self.done_buf.borrow_mut();
        if !buf.is_empty() {
            let _ = self.done_tx.send(std::mem::take(&mut *buf));
        }
    }
}

/// Deliver an arrived batch into the destination lane, or park its
/// walkers immediately when that lane's budget is already spent (the
/// parked walkers keep the quiescence count honest — an exhausted lane
/// can never strand a live walker).
fn deliver(
    ctx: &ExecCtx<'_>,
    lanes: &mut [ExecLane<'_>],
    shard: usize,
    batch: Vec<(usize, Walker)>,
) {
    let lane = &mut lanes[shard / ctx.threads];
    debug_assert_eq!(lane.shard, shard);
    if lane.attempts >= ctx.budget {
        for (wi, walker) in batch {
            ctx.finish(wi, walker, Some(shard));
        }
    } else {
        lane.runq.extend(batch);
    }
}

/// Flush outbox entries: charge the transfer model, then either hand the
/// batch to a remote executor's inbox or deliver it locally. With
/// `force`, every non-empty destination flushes; otherwise only those at
/// the flush budget.
fn flush_outbox(
    ctx: &ExecCtx<'_>,
    lanes: &mut [ExecLane<'_>],
    outbox: &mut [Vec<(usize, Walker)>],
    stats: &mut ExecStats,
    force: bool,
) -> usize {
    let mut delivered_local = 0usize;
    for (t, slot) in outbox.iter_mut().enumerate() {
        if slot.is_empty() || (!force && slot.len() < ctx.flush_budget) {
            continue;
        }
        let batch = std::mem::take(slot);
        let mut bytes = 0u64;
        for (_, wk) in &batch {
            let payload = wk.prev_row.as_ref().map_or(0, |r| r.len()) as u64;
            bytes += HANDOFF_RECORD_BYTES + 4 * payload;
        }
        let link = PcieBreakdown::model(&U250_PLATFORM, bytes, 0.0, 0);
        stats.transfer_s += link.upload_s;
        stats.transfer_bytes += bytes;
        stats.flushes += 1;
        if t % ctx.threads == ctx.exec {
            delivered_local += batch.len();
            deliver(ctx, lanes, t, batch);
        } else {
            // A send only fails after the peer saw Quiesce, which can
            // only happen once no live walkers remain — and this batch
            // holds live walkers, so the peer is still running.
            let _ = ctx.txs[t % ctx.threads].send(ExecMsg::Batch {
                shard: t,
                walkers: batch,
            });
        }
    }
    delivered_local
}

/// Sweep one lane: step the queue head until retirement, hand-off, or
/// the lane's per-advance budget. Crossings land in `outbox`; batches to
/// *remote* executors flush inline at the budget so they overlap with
/// this executor's remaining compute.
fn sweep_lane(
    ctx: &ExecCtx<'_>,
    lane: &mut ExecLane<'_>,
    outbox: &mut [Vec<(usize, Walker)>],
    stats: &mut ExecStats,
) -> bool {
    let mut worked = false;
    while lane.attempts < ctx.budget {
        let Some((wi, wk)) = lane.runq.pop_front() else {
            break;
        };
        worked = true;
        let q = ctx.queries[wi];
        // The walker sits in `slot` while it steps; retirement and
        // hand-off take it out, and anything left at the budget goes
        // back to the queue head.
        let mut slot = Some(wk);
        while lane.attempts < ctx.budget {
            let wk = slot.as_mut().expect("live walker");
            lane.attempts += 1;
            let stepper = &mut *lane.stepper;
            stepper.import_stream(&wk.stream);
            if let Some(row) = wk.prev_row.take() {
                stepper.arm_prev_row(&row);
            }
            let outcome = ctx
                .program
                .step_attempt(lane.graph, ctx.app, stepper, &q, &mut wk.st);
            stepper.clear_prev_row();
            wk.stream = stepper.export_stream();
            let done = match outcome {
                StepOutcome::Moved { done, .. } | StepOutcome::Teleported { done, .. } => {
                    let v = outcome.appended(q.start).expect("advancing outcome");
                    wk.path.push(v);
                    stats.steps += 1;
                    done
                }
                StepOutcome::DeadEnd | StepOutcome::TargetAtStart => true,
            };
            if done {
                let mut wk = slot.take().expect("live walker");
                wk.done = true;
                ctx.finish(wi, wk, None);
                break;
            }
            let t = ctx.sharded.owner_of(wk.st.cur);
            if t != lane.shard {
                if ctx.app.second_order() {
                    if let Some(prev) = wk.st.prev {
                        wk.prev_row = Some(lane.graph.neighbors(prev).to_vec());
                    }
                }
                stats.hand_offs += 1;
                let dst_exec = t % ctx.threads;
                let wk = slot.take().expect("live walker");
                outbox[t].push((wi, wk));
                if dst_exec != ctx.exec && outbox[t].len() >= ctx.flush_budget {
                    // Inline remote flush (no lane access needed): charge
                    // and send so the destination can start immediately.
                    let batch = std::mem::take(&mut outbox[t]);
                    let mut bytes = 0u64;
                    for (_, w) in &batch {
                        let payload = w.prev_row.as_ref().map_or(0, |r| r.len()) as u64;
                        bytes += HANDOFF_RECORD_BYTES + 4 * payload;
                    }
                    let link = PcieBreakdown::model(&U250_PLATFORM, bytes, 0.0, 0);
                    stats.transfer_s += link.upload_s;
                    stats.transfer_bytes += bytes;
                    stats.flushes += 1;
                    let _ = ctx.txs[dst_exec].send(ExecMsg::Batch {
                        shard: t,
                        walkers: batch,
                    });
                }
                break;
            }
        }
        if let Some(wk) = slot {
            // Budget ran out mid-walk: the walker is still live.
            lane.runq.push_front((wi, wk));
            break;
        }
    }
    if lane.attempts >= ctx.budget {
        // Park everything left; later arrivals park in `deliver`.
        while let Some((wi, wk)) = lane.runq.pop_front() {
            ctx.finish(wi, wk, Some(lane.shard));
        }
    }
    worked
}

/// Executor body: pin, then loop { absorb arrivals, sweep local lanes,
/// flush ready outboxes }; block on the inbox only when out of local
/// work with everything flushed, and return on `Quiesce`.
///
/// Termination invariant: `active` counts walkers in run queues,
/// outboxes and channels. Every retire/park decrements it exactly once,
/// and `Quiesce` is broadcast only at zero — at which point no batch can
/// be in flight anywhere, so returning immediately is safe.
fn run_executor(
    ctx: ExecCtx<'_>,
    mut lanes: Vec<ExecLane<'_>>,
    rx: Receiver<ExecMsg>,
) -> ExecStats {
    let mut stats = ExecStats {
        pinned: affinity::pin_current_thread(ctx.exec),
        ..ExecStats::default()
    };
    // Busy time: prefer the per-thread CPU clock — on a host with fewer
    // cores than executors a descheduled thread's *wall* clock keeps
    // running while a sibling executes, so wall-minus-blocked would
    // report every executor busy for the whole round. CPU time counts
    // only this thread's own cycles on any host. Where the clock is
    // unsupported, degrade to wall-minus-blocked.
    let cpu_enter = thread_clock::now();
    let t_enter = Instant::now();
    let mut blocked_s = 0.0f64;
    let mut outbox: Vec<Vec<(usize, Walker)>> = (0..ctx.k).map(|_| Vec::new()).collect();
    'round: loop {
        // Absorb queued arrivals without blocking.
        loop {
            match rx.try_recv() {
                Ok(ExecMsg::Batch { shard, walkers }) => deliver(&ctx, &mut lanes, shard, walkers),
                Ok(ExecMsg::Quiesce) => break 'round,
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        let mut worked = false;
        for lane in lanes.iter_mut() {
            worked |= sweep_lane(&ctx, lane, &mut outbox, &mut stats);
        }
        // Budget-ready local batches deliver between sweeps; remote ones
        // already flushed inline.
        if flush_outbox(&ctx, &mut lanes, &mut outbox, &mut stats, false) > 0 {
            worked = true;
        }
        if !worked {
            // Out of local work: force-flush stragglers, then block for
            // arrivals (or the quiescence broadcast). Buffered completions
            // ship first — the session thread may be waiting on exactly
            // these walkers.
            if flush_outbox(&ctx, &mut lanes, &mut outbox, &mut stats, true) > 0 {
                continue;
            }
            ctx.flush_completions();
            let t_block = Instant::now();
            let msg = rx.recv();
            blocked_s += t_block.elapsed().as_secs_f64();
            match msg {
                Ok(ExecMsg::Batch { shard, walkers }) => deliver(&ctx, &mut lanes, shard, walkers),
                Ok(ExecMsg::Quiesce) | Err(_) => break 'round,
            }
        }
    }
    ctx.flush_completions();
    stats.busy_s = match (cpu_enter, thread_clock::now()) {
        (Some(t0), Some(t1)) => (t1 - t0).max(0.0),
        _ => (t_enter.elapsed().as_secs_f64() - blocked_s).max(0.0),
    };
    debug_assert!(
        outbox.iter().all(|b| b.is_empty()),
        "quiesce with live outbox"
    );
    debug_assert!(
        lanes.iter().all(|l| l.runq.is_empty()),
        "quiesce with live lane"
    );
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::generators;
    use lightrw_walker::{Node2Vec, ReferenceEngine, Uniform, WalkEngineExt};

    #[test]
    fn single_shard_matches_the_reference_engine_exactly() {
        let mut g = generators::rmat_dataset(8, 17);
        g.build_prefix_cache();
        let qs = QuerySet::n_queries(&g, 40, 12, 99);
        let reference =
            ReferenceEngine::new(&g, &Uniform, SamplerKind::InverseTransform, 7).run(&qs);
        let engine = ShardedEngine::partition(
            &g,
            1,
            ShardStrategy::Range,
            &Uniform,
            SamplerKind::InverseTransform,
            7,
        );
        let sharded = engine.run_collected(&qs);
        assert_eq!(sharded, reference);
    }

    #[test]
    fn hand_offs_charge_the_transfer_model_and_report_diagnostics() {
        let mut g = generators::rmat_dataset(8, 17);
        g.build_prefix_cache();
        let qs = QuerySet::n_queries(&g, 64, 16, 3);
        let nv = Node2Vec::paper_params();
        let engine = ShardedEngine::partition(
            &g,
            4,
            ShardStrategy::Range,
            &nv,
            SamplerKind::InverseTransform,
            7,
        );
        let mut sink = lightrw_walker::CountingSink::default();
        let mut session = engine.start_session(&qs);
        while !session.finished() {
            session.advance(100, &mut sink);
        }
        assert_eq!(sink.paths, 64);
        let transfer = session.model_seconds().unwrap();
        assert!(transfer > 0.0, "4-way rmat split must hand off walkers");
        let diag = session.diagnostics().unwrap();
        assert!(
            diag.contains("k=4") && diag.contains("hand-offs="),
            "{diag}"
        );
    }

    #[test]
    fn shard_count_and_flush_budget_never_change_sampled_walks() {
        let mut g = generators::rmat_dataset(7, 5);
        g.build_prefix_cache();
        let qs = QuerySet::n_queries(&g, 32, 10, 21);
        let nv = Node2Vec::paper_params();
        let baseline = ShardedEngine::partition(
            &g,
            2,
            ShardStrategy::Range,
            &nv,
            SamplerKind::InverseTransform,
            11,
        )
        .run_collected(&qs);
        for (k, flush) in [(2, 1), (3, 7), (4, 64)] {
            let engine = ShardedEngine::partition(
                &g,
                k,
                ShardStrategy::Range,
                &nv,
                SamplerKind::InverseTransform,
                11,
            )
            .with_flush_budget(flush);
            let got = engine.run_collected(&qs);
            assert_eq!(got, baseline, "k={k} flush={flush}");
        }
    }

    #[test]
    fn parallel_executors_match_the_sequential_schedule() {
        let mut g = generators::rmat_dataset(7, 5);
        g.build_prefix_cache();
        let qs = QuerySet::n_queries(&g, 48, 10, 21);
        let nv = Node2Vec::paper_params();
        let baseline = ShardedEngine::partition(
            &g,
            3,
            ShardStrategy::Range,
            &nv,
            SamplerKind::InverseTransform,
            11,
        )
        .run_collected(&qs);
        for (threads, flush) in [(2, 1), (3, 7), (0, 64)] {
            let engine = ShardedEngine::partition(
                &g,
                3,
                ShardStrategy::Range,
                &nv,
                SamplerKind::InverseTransform,
                11,
            )
            .with_flush_budget(flush)
            .with_shard_threads(threads);
            let got = engine.run_collected(&qs);
            assert_eq!(got, baseline, "threads={threads} flush={flush}");
        }
    }

    #[test]
    fn parallel_diagnostics_report_threads_and_compute_seconds() {
        let mut g = generators::rmat_dataset(8, 17);
        g.build_prefix_cache();
        let qs = QuerySet::n_queries(&g, 64, 16, 3);
        let engine = ShardedEngine::partition(
            &g,
            4,
            ShardStrategy::Range,
            &Uniform,
            SamplerKind::InverseTransform,
            7,
        )
        .with_shard_threads(2)
        .with_partition_note("partition built in memory");
        let mut sink = lightrw_walker::CountingSink::default();
        let mut session = engine.start_session(&qs);
        while !session.finished() {
            session.advance(256, &mut sink);
        }
        assert_eq!(sink.paths, 64);
        let diag = session.diagnostics().unwrap();
        assert!(
            diag.contains("threads=2") && diag.contains("compute-s="),
            "{diag}"
        );
        assert!(diag.ends_with("partition built in memory"), "{diag}");
        let model = session.model_seconds().unwrap();
        assert!(model > 0.0, "compute time folds into model seconds");
    }

    #[test]
    fn parallel_cancel_emits_remaining_prefixes_exactly_once() {
        let mut g = generators::rmat_dataset(7, 5);
        g.build_prefix_cache();
        let qs = QuerySet::n_queries(&g, 32, 12, 9);
        let engine = ShardedEngine::partition(
            &g,
            4,
            ShardStrategy::Range,
            &Uniform,
            SamplerKind::InverseTransform,
            5,
        )
        .with_shard_threads(0);
        let mut sink = lightrw_walker::CountingSink::default();
        let mut session = engine.start_session(&qs);
        session.advance(3, &mut sink);
        session.cancel(&mut sink);
        assert_eq!(sink.paths, 32, "every path emitted exactly once");
        assert!(session.finished());
        let again = session.cancel(&mut lightrw_walker::CountingSink::default());
        assert_eq!(again.paths_completed, 0, "second cancel emits nothing");
    }
}
