//! Minimal markdown table rendering for experiment reports.

/// A markdown report section: title, commentary, one table.
pub struct Report {
    title: String,
    notes: Vec<String>,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Start a report with the experiment id/title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            notes: Vec::new(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Add a commentary line under the title.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Set column headers.
    pub fn headers<I, S>(&mut self, headers: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Append one row; must match header arity.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity mismatch in report {}",
            self.title
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as markdown with aligned columns.
    pub fn render(&self) -> String {
        let mut out = format!("## {}\n\n", self.title);
        for n in &self.notes {
            out.push_str(&format!("> {n}\n"));
        }
        if !self.notes.is_empty() {
            out.push('\n');
        }
        if self.headers.is_empty() {
            return out;
        }
        // Column widths.
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&line(&self.headers));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", dashes.join("-|-")));
        for row in &self.rows {
            out.push_str(&line(row));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut r = Report::new("Figure X");
        r.note("a note");
        r.headers(["col", "value"]);
        r.row(["a", "1"]);
        r.row(["longer", "2"]);
        let md = r.render();
        assert!(md.contains("## Figure X"));
        assert!(md.contains("> a note"));
        assert!(md.contains("| col    | value |"));
        assert!(md.contains("| longer | 2     |"));
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Report::new("bad");
        r.headers(["a", "b"]);
        r.row(["only-one"]);
    }

    #[test]
    fn empty_report_renders_title_only() {
        let r = Report::new("Empty");
        assert!(r.is_empty());
        assert_eq!(r.render(), "## Empty\n\n");
    }
}
