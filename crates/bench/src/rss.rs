//! Resident-set-size probes for the out-of-core bench (`graph_scale`).
//!
//! Linux only (reads `/proc/self/status`); other platforms report zero,
//! which the report records honestly as "not measured". Peak tracking
//! uses `VmHWM`, reset between phases by writing `5` to
//! `/proc/self/clear_refs` so each phase's high-water mark is its own —
//! without the reset, the pack phase's sort chunk would mask the (much
//! smaller) mmap walk footprint that the scenario exists to demonstrate.

/// Current resident set size in bytes (`VmRSS`), or 0 off-Linux.
pub fn current_rss_bytes() -> u64 {
    read_status_kib("VmRSS:") * 1024
}

/// Peak resident set size in bytes (`VmHWM`), or 0 off-Linux.
pub fn peak_rss_bytes() -> u64 {
    read_status_kib("VmHWM:") * 1024
}

/// Reset the peak-RSS water mark to the current RSS, so a following
/// [`peak_rss_bytes`] reads this phase's own maximum. Best-effort: a
/// kernel without `CONFIG_PROC_PAGE_MONITOR` (or a non-Linux host)
/// leaves the old mark in place, which only ever *over*-reports.
pub fn reset_peak_rss() {
    #[cfg(target_os = "linux")]
    {
        let _ = std::fs::write("/proc/self/clear_refs", "5");
    }
}

#[cfg(target_os = "linux")]
fn read_status_kib(field: &str) -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix(field))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kib| kib.parse().ok())
        .unwrap_or(0)
}

#[cfg(not(target_os = "linux"))]
fn read_status_kib(_field: &str) -> u64 {
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(not(target_os = "linux"), ignore = "procfs probe is linux-only")]
    fn rss_probes_report_plausible_values() {
        let rss = current_rss_bytes();
        let peak = peak_rss_bytes();
        // A running test binary holds at least a megabyte and the peak
        // can never trail the current value by more than scheduling skew.
        assert!(rss > 1 << 20, "VmRSS={rss}");
        assert!(peak >= rss / 2, "VmHWM={peak} < VmRSS={rss}");
    }

    #[test]
    #[cfg_attr(not(target_os = "linux"), ignore = "procfs probe is linux-only")]
    fn peak_reset_tracks_new_allocations() {
        reset_peak_rss();
        // Touch a fresh 32 MB so the new high-water mark must include it.
        let mut buf = vec![0u8; 32 << 20];
        for page in buf.chunks_mut(4096) {
            page[0] = 1;
        }
        let peak = peak_rss_bytes();
        assert!(peak > 16 << 20, "VmHWM={peak} after touching 32 MB");
        drop(buf);
    }
}
