//! The evaluation datasets at harness scale.

use lightrw::graph::generators::rmat_dataset;
use lightrw::prelude::*;

/// The five real-world stand-ins of Table 2 at `scale` (see DESIGN.md §1
//  for the substitution rationale), in the paper's order.
pub fn standins(scale: u32, seed: u64) -> Vec<(String, Graph)> {
    DatasetProfile::all_real()
        .into_iter()
        .map(|p| (p.name.to_string(), p.stand_in(scale, seed)))
        .collect()
}

/// The rmat-N synthetics used by Figs. 11–12.
pub fn rmat_series(scales: impl IntoIterator<Item = u32>, seed: u64) -> Vec<(String, Graph)> {
    scales
        .into_iter()
        .map(|s| (format!("rmat-{s}"), rmat_dataset(s, seed ^ s as u64)))
        .collect()
}

/// The two evaluated applications with the paper's parameters (§6.1.4):
/// MetaPath length 5 over a 5-relation path, Node2Vec length 80 with
/// p = 2, q = 0.5. Returns (app, query length) pairs; `quick` shortens
/// Node2Vec so CI stays fast.
pub fn paper_apps(quick: bool) -> Vec<(Box<dyn WalkApp>, u32)> {
    let n2v_len = if quick { 16 } else { 80 };
    vec![
        (
            Box::new(MetaPath::new(vec![0, 1, 0, 1, 0])) as Box<dyn WalkApp>,
            5,
        ),
        (
            Box::new(Node2Vec::paper_params()) as Box<dyn WalkApp>,
            n2v_len,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_standins_in_paper_order() {
        let ds = standins(8, 1);
        let names: Vec<&str> = ds.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["youtube", "us-patents", "liveJournal", "orkut", "uk2002"]
        );
        for (name, g) in &ds {
            assert_eq!(g.num_vertices(), 256, "{name}");
            assert!(g.num_edges() > 0, "{name}");
        }
    }

    #[test]
    fn rmat_series_scales() {
        let ds = rmat_series([6, 8], 3);
        assert_eq!(ds[0].1.num_vertices(), 64);
        assert_eq!(ds[1].1.num_vertices(), 256);
    }

    #[test]
    fn apps_match_paper_settings() {
        let apps = paper_apps(false);
        assert_eq!(apps[0].1, 5);
        assert_eq!(apps[1].1, 80);
        assert_eq!(apps[0].0.name(), "MetaPath");
        assert_eq!(apps[1].0.name(), "Node2Vec");
        assert_eq!(paper_apps(true)[1].1, 16);
    }
}
