//! **Figure 14** — end-to-end speedup of LightRW over the ThunderRW-like
//! CPU baseline and over "ThunderRW w/PWRS" (the parallel WRS algorithm
//! run on the CPU), for MetaPath and Node2Vec on all five stand-ins.
//!
//! Timing caveat (DESIGN.md §1): baseline numbers are real wall-clock on
//! this host; LightRW numbers are simulated kernel time plus the modelled
//! PCIe transfers. The reproduced claim is the *shape*: LightRW wins on
//! every dataset, PWRS-on-CPU does not.

use std::time::Instant;

use lightrw::platform::AppKind;
use lightrw::prelude::*;

use crate::table::Report;
use crate::Opts;

/// One measured dataset × app cell.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    /// Dataset name.
    pub dataset: String,
    /// Application name.
    pub app: String,
    /// For the power model.
    pub app_kind: AppKind,
    /// ThunderRW-like baseline, wall-clock seconds.
    pub baseline_s: f64,
    /// Baseline with parallel WRS on CPU, wall-clock seconds.
    pub baseline_pwrs_s: f64,
    /// LightRW end-to-end seconds (simulated kernel + modelled PCIe).
    pub lightrw_s: f64,
}

/// Measure every dataset × app cell once (shared with Table 3).
pub fn measure(opts: &Opts) -> Vec<MeasuredRow> {
    let scale = if opts.quick { 9 } else { opts.scale };
    let mut rows = Vec::new();
    for (app, len) in crate::datasets::paper_apps(opts.quick) {
        for (name, g) in crate::datasets::standins(scale, opts.seed) {
            let qs = if opts.quick {
                QuerySet::n_queries(&g, (g.num_vertices() / 2).max(64), len, opts.seed)
            } else {
                QuerySet::per_nonisolated_vertex(&g, len, opts.seed)
            };

            let t = Instant::now();
            let (_, base_stats) =
                CpuEngine::new(&g, app.as_ref(), BaselineConfig::default()).run(&qs);
            let baseline_s = t.elapsed().as_secs_f64();
            debug_assert!(base_stats.steps > 0);

            let t = Instant::now();
            CpuEngine::new(&g, app.as_ref(), BaselineConfig::with_pwrs(16)).run(&qs);
            let baseline_pwrs_s = t.elapsed().as_secs_f64();

            let report = LightRw::new(&g, app.as_ref(), LightRwConfig::default()).run(&qs);
            rows.push(MeasuredRow {
                dataset: name.clone(),
                app: app.name().to_string(),
                app_kind: AppKind::of(app.as_ref()),
                baseline_s,
                baseline_pwrs_s,
                lightrw_s: report.end_to_end_s(),
            });
        }
    }
    rows
}

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let rows = measure(opts);
    let mut out = String::new();
    for app in ["MetaPath", "Node2Vec"] {
        let mut report = Report::new(format!(
            "Figure 14 ({app}) — speedup over ThunderRW-like baseline"
        ));
        report.note("baseline: measured wall-clock; LightRW: simulated kernel + modelled PCIe");
        report.note(
            "paper: LightRW 6.27x-9.55x (MetaPath), 5.17x-9.10x (Node2Vec); w/PWRS ~0.6x-1.8x",
        );
        report.headers([
            "Graph",
            "ThunderRW (s)",
            "w/PWRS (rel)",
            "LightRW (s)",
            "LightRW speedup",
        ]);
        for r in rows.iter().filter(|r| r.app == app) {
            report.row([
                r.dataset.clone(),
                format!("{:.3}", r.baseline_s),
                format!("{:.2}x", r.baseline_s / r.baseline_pwrs_s),
                format!("{:.4}", r.lightrw_s),
                format!("{:.2}x", r.baseline_s / r.lightrw_s),
            ]);
        }
        out.push_str(&report.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_all_ten_cells() {
        let rows = measure(&Opts::quick());
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.baseline_s > 0.0, "{}", r.dataset);
            assert!(r.baseline_pwrs_s > 0.0);
            assert!(r.lightrw_s > 0.0);
        }
    }

    #[test]
    fn report_has_speedup_columns() {
        let md = run(&Opts::quick());
        assert!(md.contains("LightRW speedup"));
        assert!(md.contains("(MetaPath)"));
        assert!(md.contains("(Node2Vec)"));
    }
}
