//! **Figure 16** — throughput (steps/second) vs number of queries on the
//! liveJournal stand-in, LightRW vs the CPU baseline.
//!
//! The paper's observation: LightRW's throughput is flat in query count,
//! while the CPU engine needs thousands of queries to amortize its
//! initialization, so the speedup is largest for small batches.

use std::time::Instant;

use lightrw::prelude::*;

use crate::table::Report;
use crate::Opts;

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let scale = if opts.quick { 9 } else { opts.scale };
    let g = DatasetProfile::livejournal().stand_in(scale, opts.seed);
    let max_exp = if opts.quick { 12 } else { 16 };

    let mut out = String::new();
    for (app, len) in crate::datasets::paper_apps(opts.quick) {
        let mut report = Report::new(format!(
            "Figure 16 ({}) — throughput vs number of queries (LJ stand-in)",
            app.name()
        ));
        report.note("paper: LightRW is flat; speedup up to 75.7x at 2^10 queries (MetaPath)");
        report.headers([
            "Queries",
            "LightRW (steps/s)",
            "CPU baseline (steps/s)",
            "Speedup",
        ]);
        let mut exp = 10u32;
        while exp <= max_exp {
            let qs = QuerySet::n_queries(&g, 1 << exp, len, opts.seed ^ exp as u64);

            let sim = LightRwSim::new(&g, app.as_ref(), LightRwConfig::default()).run(&qs);
            let hw_tp = sim.steps_per_sec();

            let t = Instant::now();
            let (_, stats) = CpuEngine::new(&g, app.as_ref(), BaselineConfig::default()).run(&qs);
            let cpu_s = t.elapsed().as_secs_f64();
            let cpu_tp = stats.steps as f64 / cpu_s;

            report.row([
                format!("2^{exp}"),
                crate::fmt_rate(hw_tp),
                crate::fmt_rate(cpu_tp),
                format!("{:.2}x", hw_tp / cpu_tp),
            ]);
            exp += 2;
        }
        out.push_str(&report.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_query_range() {
        let md = run(&Opts::quick());
        assert!(md.contains("2^10"));
        assert!(md.contains("2^12"));
        assert!(md.contains("Speedup"));
    }
}
