//! One module per table/figure of the paper's evaluation.
//!
//! Every module exposes `run(opts: &Opts) -> String` returning a rendered
//! markdown report with the same rows/series the paper presents. The
//! mapping to paper artifacts is in DESIGN.md §3.

pub mod ext_cluster;
pub mod fig06_burst_bandwidth;
pub mod fig10_wrs;
pub mod fig11_cache;
pub mod fig12_burst;
pub mod fig13_breakdown;
pub mod fig14_speedup;
pub mod fig15_latency;
pub mod fig16_queries;
pub mod fig17_length;
pub mod fig18_linkpred;
pub mod table1_profiling;
pub mod table3_power;
pub mod table4_pcie;
pub mod table5_resources;

use crate::Opts;

/// An experiment runner: takes harness options, returns rendered markdown.
pub type Runner = fn(&Opts) -> String;

/// Every experiment with its id, in paper order: (id, runner).
pub fn all() -> Vec<(&'static str, Runner)> {
    vec![
        ("table1", table1_profiling::run),
        ("fig6", fig06_burst_bandwidth::run),
        ("fig10", fig10_wrs::run),
        ("fig11", fig11_cache::run),
        ("fig12", fig12_burst::run),
        ("fig13", fig13_breakdown::run),
        ("fig14", fig14_speedup::run),
        ("fig15", fig15_latency::run),
        ("fig16", fig16_queries::run),
        ("fig17", fig17_length::run),
        ("table3", table3_power::run),
        ("table4", table4_pcie::run),
        ("table5", table5_resources::run),
        ("fig18", fig18_linkpred::run),
        ("ext_cluster", ext_cluster::run),
    ]
}
