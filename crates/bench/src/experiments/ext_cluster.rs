//! **Extension (paper §8 future work)** — multi-board scaling under full
//! graph replication: kernel time and aggregate throughput for 1–8 boards
//! on a fixed workload.

use lightrw::prelude::*;
use lightrw::LightRwCluster;

use crate::table::Report;
use crate::Opts;

/// Run the extension experiment.
pub fn run(opts: &Opts) -> String {
    let scale = if opts.quick { 9 } else { opts.scale };
    let g = DatasetProfile::livejournal().stand_in(scale, opts.seed);
    let nv = Node2Vec::paper_params();
    let len = if opts.quick { 8 } else { 40 };
    let qs = QuerySet::per_nonisolated_vertex(&g, len, opts.seed ^ 3);

    let mut report = Report::new("Extension — multi-board scaling (replicated graph)");
    report.note("paper §8: terabyte graphs need multiple boards; walks are embarrassingly parallel under replication");
    report.headers([
        "Boards",
        "Kernel (ms)",
        "End-to-end (ms)",
        "Steps/s",
        "Scaling",
    ]);

    let mut base: Option<f64> = None;
    for boards in [1usize, 2, 4, 8] {
        let rep = LightRwCluster::new(&g, &nv, LightRwConfig::default(), boards).run(&qs);
        let k = rep.kernel_s;
        let baseline = *base.get_or_insert(k);
        report.row([
            boards.to_string(),
            format!("{:.3}", k * 1e3),
            format!("{:.3}", rep.end_to_end_s * 1e3),
            crate::fmt_rate(rep.steps_per_sec()),
            format!("{:.2}x", baseline / k),
        ]);
    }
    report.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_table_renders_and_scales() {
        let md = run(&Opts::quick());
        assert!(md.contains("Boards"));
        assert!(md.contains("| 8"));
        // The 1-board row is 1.00x by construction.
        assert!(md.contains("1.00x"));
    }
}
