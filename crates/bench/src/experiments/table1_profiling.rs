//! **Table 1** — top-down profile of the CPU engine (LLC miss ratio,
//! memory bound, retiring) for MetaPath and Node2Vec on the liveJournal
//! and uk2002 stand-ins, via the trace-driven LLC proxy.

use lightrw::baseline::{profile_top_down, LlcSim};
use lightrw::prelude::*;

use crate::table::Report;
use crate::Opts;

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let mut report = Report::new("Table 1 — CPU-engine top-down profile (proxy)");
    report.note(format!(
        "scale 2^{} stand-ins; LLC scaled by the same factor as the graphs \
         (trace-driven proxy for vTune, DESIGN.md §1)",
        opts.scale
    ));
    report.headers([
        "Application",
        "Graph",
        "LLC Miss",
        "Memory Bound",
        "Retiring Ratio",
    ]);

    let graphs = [
        ("liveJournal", DatasetProfile::livejournal()),
        ("uk-2002", DatasetProfile::uk2002()),
    ];
    let n_queries = if opts.quick { 500 } else { 4000 };
    for (app, len) in crate::datasets::paper_apps(opts.quick) {
        for (name, profile) in &graphs {
            let g = profile.stand_in(opts.scale, opts.seed);
            let qs = QuerySet::n_queries(&g, n_queries, len, opts.seed ^ 1);
            // Scale the 35.75 MB Xeon LLC by the vertex-count ratio of the
            // real dataset to the stand-in.
            let divisor = (profile.real_vertices / (1u64 << opts.scale)).max(1);
            let mut llc = LlcSim::scaled(divisor);
            let p = profile_top_down(
                &g,
                app.as_ref(),
                SamplerKind::InverseTransform,
                &qs,
                &mut llc,
                opts.seed,
            );
            report.row([
                app.name().to_string(),
                name.to_string(),
                format!("{:.1}%", p.llc_miss_ratio * 100.0),
                format!("{:.1}%", p.memory_bound * 100.0),
                format!("{:.1}%", p.retiring * 100.0),
            ]);
        }
    }
    report.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_four_rows() {
        let md = run(&Opts::quick());
        assert_eq!(md.matches("MetaPath").count(), 2);
        assert_eq!(md.matches("Node2Vec").count(), 2);
        assert!(md.contains("LLC Miss"));
    }
}
