//! **Figure 18** — the link-prediction case study: execution-time
//! breakdown of SNAP-style CPU link prediction vs the LightRW-accelerated
//! flow (Node2Vec walks + SGNS learning + cosine scoring).

use lightrw::prelude::*;
use lightrw_embed::{run_case_study, SgnsConfig};

use crate::table::Report;
use crate::Opts;

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let scale = if opts.quick { 9 } else { opts.scale.min(13) };
    let g = DatasetProfile::livejournal().stand_in(scale, opts.seed);
    let walk_len = if opts.quick { 10 } else { 60 };
    let sgns = SgnsConfig {
        dim: if opts.quick { 16 } else { 24 },
        window: 4,
        epochs: 1,
        ..Default::default()
    };
    let report = run_case_study(&g, walk_len, sgns, opts.seed);

    let mut table = Report::new("Figure 18 — link prediction time breakdown (LJ stand-in)");
    table.note(format!(
        "Node2Vec length {walk_len}; SGNS dim {}, {} epoch(s); AUC cpu {:.3} / accelerated {:.3} over {} held-out pairs",
        sgns.dim, sgns.epochs, report.auc_cpu, report.auc_accelerated, report.test_pairs
    ));
    table.note("paper: walk dominates SNAP; LightRW halves total time; transfers negligible");
    table.note(format!(
        "walk share of total: {:.1}% (CPU) → {:.1}% (accelerated); walk phase itself {:.1}x faster. \
         At reduced scale SGNS learning constants dominate the total (scale artifact, see EXPERIMENTS.md); \
         at paper scale the walk dominates and the total halves.",
        100.0 * report.snap.random_walk_s / report.snap.total_s(),
        100.0 * report.accelerated.random_walk_s / report.accelerated.total_s(),
        report.snap.random_walk_s / report.accelerated.random_walk_s
    ));
    table.headers([
        "Flow",
        "Graph transfer",
        "Random walk",
        "Result transfer",
        "Learning",
        "Total",
    ]);
    let fmt = |t: &lightrw_embed::PhaseTimes| {
        [
            crate::fmt_secs(t.graph_transfer_s),
            crate::fmt_secs(t.random_walk_s),
            crate::fmt_secs(t.result_transfer_s),
            crate::fmt_secs(t.learning_s),
            crate::fmt_secs(t.total_s()),
        ]
    };
    let snap = fmt(&report.snap);
    let acc = fmt(&report.accelerated);
    table.row(
        std::iter::once("SNAP (CPU)".to_string())
            .chain(snap.iter().cloned())
            .collect::<Vec<_>>(),
    );
    table.row(
        std::iter::once("SNAP w/LightRW".to_string())
            .chain(acc.iter().cloned())
            .collect::<Vec<_>>(),
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_has_both_flows() {
        let md = run(&Opts::quick());
        assert!(md.contains("SNAP (CPU)"));
        assert!(md.contains("SNAP w/LightRW"));
        assert!(md.contains("AUC"));
    }
}
