//! **Figure 15** — per-query latency distribution (box plots: min, lower
//! quartile, median, upper quartile, max) of LightRW vs the CPU baseline
//! over randomly selected queries.
//!
//! LightRW latencies come from the simulator's per-query dispatch→sample
//! cycle counts; CPU latencies are measured by timing queries one at a
//! time on a single thread (per-query latency is unobservable inside the
//! batch-throughput engine).

use std::time::Instant;

use lightrw::prelude::*;

use crate::table::Report;
use crate::Opts;

fn quartiles_us(mut v: Vec<f64>) -> (f64, f64, f64, f64, f64) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |f: f64| v[(((v.len() - 1) as f64) * f) as usize];
    (v[0], q(0.25), q(0.5), q(0.75), *v.last().unwrap())
}

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let n_queries = if opts.quick { 256 } else { 8192 };
    let scale = if opts.quick { 9 } else { opts.scale };
    let mut out = String::new();
    for (app, len) in crate::datasets::paper_apps(opts.quick) {
        let mut report = Report::new(format!(
            "Figure 15 ({}) — per-query latency quartiles (µs), {} queries",
            app.name(),
            n_queries
        ));
        report.note("cells: min / p25 / median / p75 / max");
        report.note("paper: LightRW latency is lower and far more consistent than the CPU's");
        report.headers(["Graph", "LightRW (µs)", "CPU baseline (µs)"]);

        for (name, g) in crate::datasets::standins(scale, opts.seed) {
            let qs = QuerySet::n_queries(&g, n_queries, len, opts.seed ^ 7);

            // Accelerator: per-query latency from the simulator.
            let cfg = LightRwConfig::default();
            let sim = LightRwSim::new(&g, app.as_ref(), cfg).run(&qs);
            let cyc_s = 1e6 / 300e6; // µs per cycle
            let hw: Vec<f64> = sim.latencies.iter().map(|&c| c as f64 * cyc_s).collect();

            // CPU: time each query individually (single thread).
            let engine = CpuEngine::new(
                &g,
                app.as_ref(),
                BaselineConfig {
                    threads: 1,
                    ..Default::default()
                },
            );
            let mut cpu = Vec::with_capacity(n_queries);
            for q in qs.queries() {
                let single = QuerySet::from_starts(vec![q.start], q.length);
                let t = Instant::now();
                engine.run(&single);
                cpu.push(t.elapsed().as_secs_f64() * 1e6);
            }

            let h = quartiles_us(hw);
            let c = quartiles_us(cpu);
            let fmt = |(a, b, m, d, e): (f64, f64, f64, f64, f64)| {
                format!("{a:.1} / {b:.1} / {m:.1} / {d:.1} / {e:.1}")
            };
            report.row([name.clone(), fmt(h), fmt(c)]);
        }
        out.push_str(&report.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_sorted_ascending() {
        let (min, p25, med, p75, max) = quartiles_us(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!((min, p25, med, p75, max), (1.0, 2.0, 3.0, 4.0, 5.0));
    }

    #[test]
    fn report_renders_both_engines() {
        let md = run(&Opts::quick());
        assert!(md.contains("LightRW (µs)"));
        assert!(md.contains("CPU baseline (µs)"));
    }
}
