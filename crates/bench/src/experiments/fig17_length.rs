//! **Figure 17** — throughput (steps/second) vs query length on the
//! liveJournal stand-in, LightRW vs the CPU baseline.
//!
//! Paper: both engines are length-insensitive; the speedup stays around
//! 10x (MetaPath) / 8-9x (Node2Vec) across lengths 10-80.

use std::time::Instant;

use lightrw::prelude::*;

use crate::table::Report;
use crate::Opts;

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let scale = if opts.quick { 9 } else { opts.scale };
    let g = DatasetProfile::livejournal().stand_in(scale, opts.seed);
    let n_queries = if opts.quick { 512 } else { 1 << 14 };
    let lengths: Vec<u32> = if opts.quick {
        vec![10, 20, 40]
    } else {
        (1..=8).map(|i| i * 10).collect()
    };

    let mut out = String::new();
    for (app, _) in crate::datasets::paper_apps(opts.quick) {
        let mut report = Report::new(format!(
            "Figure 17 ({}) — throughput vs query length (LJ stand-in, {} queries)",
            app.name(),
            n_queries
        ));
        report.note("paper: flat throughput; ~10x speedup for MetaPath, 8.3-9.3x for Node2Vec");
        report.headers([
            "Length",
            "LightRW (steps/s)",
            "CPU baseline (steps/s)",
            "Speedup",
        ]);
        for &len in &lengths {
            let qs = QuerySet::n_queries(&g, n_queries, len, opts.seed ^ len as u64);

            let sim = LightRwSim::new(&g, app.as_ref(), LightRwConfig::default()).run(&qs);
            let hw_tp = sim.steps_per_sec();

            let t = Instant::now();
            let (_, stats) = CpuEngine::new(&g, app.as_ref(), BaselineConfig::default()).run(&qs);
            let cpu_tp = stats.steps as f64 / t.elapsed().as_secs_f64();

            report.row([
                len.to_string(),
                crate::fmt_rate(hw_tp),
                crate::fmt_rate(cpu_tp),
                format!("{:.2}x", hw_tp / cpu_tp),
            ]);
        }
        out.push_str(&report.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_lengths() {
        let md = run(&Opts::quick());
        assert!(md.contains("| 10"));
        assert!(md.contains("| 40"));
    }
}
