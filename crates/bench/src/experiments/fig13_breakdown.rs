//! **Figure 13** — contribution breakdown of the three techniques: WRS
//! pipelining, the dynamic burst engine (DYB) and the degree-aware cache
//! (DAC). Each is disabled one at a time; the slowdown relative to the
//! all-enabled configuration is its contribution.

use lightrw::prelude::*;

use crate::table::Report;
use crate::Opts;

fn cycles(
    g: &Graph,
    app: &dyn WalkApp,
    len: u32,
    cfg: LightRwConfig,
    quick: bool,
    seed: u64,
) -> u64 {
    let qs = if quick {
        QuerySet::n_queries(g, (g.num_vertices() / 2).max(64), len, seed)
    } else {
        QuerySet::per_nonisolated_vertex(g, len, seed)
    };
    LightRwSim::new(g, app, cfg).run(&qs).cycles
}

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let mut out = String::new();
    for (app, len) in crate::datasets::paper_apps(opts.quick) {
        let mut report = Report::new(format!(
            "Figure 13 ({}) — performance contribution per technique",
            app.name()
        ));
        report.note("slowdown when the technique is disabled, relative to all-enabled");
        report.note("paper: WRS contributes most (41%-79%), DYB helps MetaPath more than Node2Vec");
        report.headers(["Graph", "w/o WRS pipelining", "w/o DYB", "w/o DAC"]);

        let scale = if opts.quick { 9 } else { opts.scale };
        for (name, g) in crate::datasets::standins(scale, opts.seed) {
            let base_cfg = LightRwConfig {
                instances: 1,
                ..LightRwConfig::default()
            };
            let all_on = cycles(&g, app.as_ref(), len, base_cfg, opts.quick, opts.seed);
            let slow = |cfg: LightRwConfig| {
                let c = cycles(&g, app.as_ref(), len, cfg, opts.quick, opts.seed);
                format!("{:+.1}%", (c as f64 / all_on as f64 - 1.0) * 100.0)
            };
            report.row([
                name.clone(),
                slow(base_cfg.without_wrs_pipelining()),
                slow(base_cfg.without_dynamic_burst()),
                slow(base_cfg.without_cache()),
            ]);
        }
        out.push_str(&report.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw::graph::generators::rmat_dataset;

    #[test]
    fn wrs_is_the_largest_contributor() {
        // The Fig. 13 headline: disabling WRS pipelining costs more than
        // disabling either memory optimization.
        let g = rmat_dataset(11, 5);
        let base = LightRwConfig {
            instances: 1,
            ..LightRwConfig::default()
        };
        let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
        let all_on = cycles(&g, &mp, 5, base, true, 1);
        let no_wrs = cycles(&g, &mp, 5, base.without_wrs_pipelining(), true, 1);
        let no_dyb = cycles(&g, &mp, 5, base.without_dynamic_burst(), true, 1);
        let no_dac = cycles(&g, &mp, 5, base.without_cache(), true, 1);
        assert!(no_wrs > all_on && no_dyb > all_on && no_dac >= all_on);
        assert!(
            no_wrs >= no_dyb && no_wrs >= no_dac,
            "WRS {no_wrs} DYB {no_dyb} DAC {no_dac} (all-on {all_on})"
        );
    }

    #[test]
    fn report_has_both_apps() {
        let md = run(&Opts::quick());
        assert!(md.contains("(MetaPath)"));
        assert!(md.contains("(Node2Vec)"));
        assert!(md.contains("w/o DYB"));
    }
}
