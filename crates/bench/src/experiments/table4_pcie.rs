//! **Table 4** — proportion of PCIe transfer time in end-to-end execution
//! for MetaPath and Node2Vec on all five stand-ins.

use lightrw::prelude::*;

use crate::table::Report;
use crate::Opts;

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let scale = if opts.quick { 9 } else { opts.scale };
    let mut report = Report::new("Table 4 — PCIe transfer share of end-to-end time");
    report.note("paper: 16.5%-33.5% for MetaPath (short walks), 0.07%-1.1% for Node2Vec");
    report.headers([
        "App",
        "youtube",
        "us-patents",
        "liveJournal",
        "orkut",
        "uk2002",
    ]);

    for (app, len) in crate::datasets::paper_apps(opts.quick) {
        let mut row = vec![app.name().to_string()];
        for (_, g) in crate::datasets::standins(scale, opts.seed) {
            let qs = if opts.quick {
                QuerySet::n_queries(&g, (g.num_vertices() / 2).max(64), len, opts.seed)
            } else {
                QuerySet::per_nonisolated_vertex(&g, len, opts.seed)
            };
            let rep = LightRw::new(&g, app.as_ref(), LightRwConfig::default()).run(&qs);
            row.push(format!("{:.2}%", rep.pcie.transfer_fraction() * 100.0));
        }
        report.row(row);
    }
    report.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metapath_fraction_exceeds_node2vec() {
        let md = run(&Opts::quick());
        assert!(md.contains("MetaPath"));
        assert!(md.contains("Node2Vec"));
        assert!(md.contains('%'));
    }
}
