//! **Table 5** — FPGA resource utilization and frequency per application
//! bitstream, from the parametric model anchored to the paper's synthesis
//! reports.

use lightrw::platform::AppKind;
use lightrw::prelude::*;
use lightrw::resources::{estimate, fits_u250};

use crate::table::Report;
use crate::Opts;

/// Run the experiment.
pub fn run(_opts: &Opts) -> String {
    let cfg = LightRwConfig::default();
    let mut report = Report::new("Table 5 — resource utilization model (Alveo U250)");
    report.note("parametric model anchored to the paper's synthesis results (DESIGN.md §1)");
    report.note(
        "paper: MetaPath 33.52/29.76/17.24/5.16 @300MHz; Node2Vec 20.84/18.20/36.12/2.62 @300MHz",
    );
    report.headers(["App", "LUTs", "REGs", "BRAMs", "DSPs", "Frequency", "Fits?"]);
    for (name, kind) in [
        ("MetaPath", AppKind::MetaPath),
        ("Node2Vec", AppKind::Node2Vec),
    ] {
        let e = estimate(&cfg, kind);
        report.row([
            name.to_string(),
            format!("{:.2}%", e.luts_pct),
            format!("{:.2}%", e.regs_pct),
            format!("{:.2}%", e.brams_pct),
            format!("{:.2}%", e.dsps_pct),
            format!("{:.0} MHz", e.freq_mhz),
            if fits_u250(&e) { "yes" } else { "NO" }.to_string(),
        ]);
    }

    // Extension: how far does k scale before the board fills up?
    let mut sweep = Report::new("Table 5b (extension) — utilization vs WRS parallelism k");
    sweep.headers(["k", "LUTs", "DSPs", "Fits?"]);
    for k in [8usize, 16, 32, 64, 128] {
        let e = estimate(
            &LightRwConfig {
                k,
                ..LightRwConfig::default()
            },
            AppKind::MetaPath,
        );
        sweep.row([
            k.to_string(),
            format!("{:.2}%", e.luts_pct),
            format!("{:.2}%", e.dsps_pct),
            if fits_u250(&e) { "yes" } else { "NO" }.to_string(),
        ]);
    }
    format!("{}{}", report.render(), sweep.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_bitstreams_fit_at_300mhz() {
        let md = run(&Opts::quick());
        assert!(md.contains("300 MHz"));
        assert!(md.matches("| yes").count() + md.matches("| NO").count() >= 2);
        assert!(md.contains("Table 5b"));
    }
}
