//! **Figure 12** — speedup of dynamic burst strategies `b1+b{2..64}` over
//! the short-burst-only baseline `b1+b0`, MetaPath on RMAT synthetics and
//! the five real-graph stand-ins.

use lightrw::prelude::*;

use crate::table::Report;
use crate::Opts;

fn cycles_with_burst(
    g: &Graph,
    app: &dyn WalkApp,
    len: u32,
    burst: BurstConfig,
    quick: bool,
    seed: u64,
) -> u64 {
    let qs = if quick {
        QuerySet::n_queries(g, (g.num_vertices() / 2).max(64), len, seed)
    } else {
        QuerySet::per_nonisolated_vertex(g, len, seed)
    };
    let cfg = LightRwConfig {
        burst,
        instances: 1,
        ..LightRwConfig::default()
    };
    LightRwSim::new(g, app, cfg).run(&qs).cycles
}

/// The strategies of Fig. 12, long-burst beats per column.
pub const STRATEGIES: [u64; 6] = [2, 4, 8, 16, 32, 64];

/// Run the experiment. The paper's figure sweeps MetaPath; we add the
/// Node2Vec sweep the paper omits as an extension table (DESIGN.md §3).
pub fn run(opts: &Opts) -> String {
    let rmat_lo = if opts.quick { 8 } else { 10 };
    let rmat_hi = if opts.quick {
        10
    } else {
        opts.scale.max(rmat_lo + 2)
    };
    let mut graphs = crate::datasets::rmat_series((rmat_lo..=rmat_hi).step_by(2), opts.seed);
    graphs.extend(crate::datasets::standins(
        if opts.quick { 9 } else { opts.scale },
        opts.seed,
    ));

    let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
    let nv = Node2Vec::paper_params();
    let apps: Vec<(&dyn WalkApp, u32, &str)> = if opts.quick {
        vec![(&mp, 5, "paper figure")]
    } else {
        vec![(&mp, 5, "paper figure"), (&nv, 16, "extension sweep")]
    };

    let mut out = String::new();
    for (app, len, tag) in apps {
        let mut report = Report::new(format!(
            "Figure 12 ({}, {tag}) — dynamic burst strategy speedup over b1+b0",
            app.name()
        ));
        report.note(format!(
            "{} with query length {len}; baseline is short-burst-only",
            app.name()
        ));
        report.note(
            "paper: b1+b32 wins everywhere, up to 4.24x on synthetics, up to 3.26x on real graphs",
        );
        let mut headers = vec!["Graph".to_string()];
        headers.extend(STRATEGIES.iter().map(|s| format!("b1+b{s}")));
        report.headers(headers);

        for (name, g) in &graphs {
            let base = cycles_with_burst(
                g,
                app,
                len,
                BurstConfig::short_only(),
                opts.quick,
                opts.seed,
            );
            let mut row = vec![name.clone()];
            for &s in &STRATEGIES {
                let c = cycles_with_burst(
                    g,
                    app,
                    len,
                    BurstConfig::with_long(s),
                    opts.quick,
                    opts.seed,
                );
                row.push(format!("{:.2}x", base as f64 / c as f64));
            }
            report.row(row);
        }
        out.push_str(&report.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw::graph::generators::rmat_dataset;

    #[test]
    fn long_bursts_speed_up_skewed_graphs() {
        // The Fig. 12 shape: the paper's pick (b1+b32) beats the
        // short-only baseline, while tiny long bursts (b1+b2) lose to it
        // (their setup cost is never amortized). Factors grow with hub
        // size, so at this reduced scale we assert direction, not the
        // paper's absolute 2.5-4.2x.
        let g = rmat_dataset(13, 7);
        let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
        let base = cycles_with_burst(&g, &mp, 5, BurstConfig::short_only(), false, 1);
        let b32 = cycles_with_burst(&g, &mp, 5, BurstConfig::with_long(32), false, 1);
        let b2 = cycles_with_burst(&g, &mp, 5, BurstConfig::with_long(2), false, 1);
        let speedup32 = base as f64 / b32 as f64;
        let speedup2 = base as f64 / b2 as f64;
        assert!(speedup32 > 1.1, "b1+b32 speedup only {speedup32:.2}");
        assert!(speedup2 < 1.0, "b1+b2 should lose: {speedup2:.2}");
        assert!(speedup32 > speedup2);
    }

    #[test]
    fn report_covers_synthetics_and_standins() {
        let md = run(&Opts::quick());
        assert!(md.contains("rmat-8"));
        assert!(md.contains("liveJournal"));
        assert!(md.contains("b1+b32"));
    }
}
