//! **Figure 10** — WRS Sampler throughput: (a) vs degree of parallelism
//! `k`, (b) vs stream length at k = 16.
//!
//! The paper streams pre-generated weights from one DRAM channel into the
//! sampler and measures consumed items/second. Two numbers per point:
//!
//! - *model GB/s*: the pipeline model's consumption rate (k 4-byte items
//!   per cycle at 300 MHz, capped by the channel's streaming bandwidth) —
//!   this reproduces the paper's saturation at ≈ 17.5 GB/s for k = 16;
//! - *software Mitems/s*: the measured execution speed of the actual Rust
//!   [`lightrw::sampling::ParallelWrs`] on this host (a bonus column — the
//!   software sampler is what all functional results run on).

use std::time::Instant;

use lightrw::memsim::DramConfig;
use lightrw::rng::{Rng, SplitMix64};
use lightrw::sampling::ParallelWrs;

use crate::table::Report;
use crate::Opts;

/// Bytes per streamed weight item (32-bit weights on the bus).
const ITEM_BYTES: f64 = 4.0;

fn model_throughput_gbps(k: usize, dram: &DramConfig) -> f64 {
    let sampler = k as f64 * ITEM_BYTES * dram.freq_mhz as f64 * 1e6;
    let memory = dram.streaming_bandwidth(32); // b32 streaming supply
    sampler.min(memory) / 1e9
}

fn software_mitems_per_s(k: usize, n: usize, seed: u64) -> f64 {
    let mut rng = SplitMix64::new(seed);
    let weights: Vec<u32> = (0..n).map(|_| 1 + (rng.next_u32() >> 24)).collect();
    let items: Vec<u32> = (0..n as u32).collect();
    let mut wrs = ParallelWrs::new(seed, k);
    let reps = (4_000_000 / n).max(1);
    let t = Instant::now();
    let mut sink = 0u64;
    for _ in 0..reps {
        sink = sink.wrapping_add(wrs.select(&items, &weights).unwrap_or(0) as u64);
    }
    let dt = t.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    (n * reps) as f64 / dt / 1e6
}

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let dram = DramConfig::default();
    let stream = if opts.quick { 1 << 12 } else { 1 << 16 };

    let mut a = Report::new("Figure 10a — WRS sampler throughput vs parallelism k");
    a.note(format!(
        "memory line rate {:.2} GB/s; paper saturates at k = 16",
        dram.streaming_bandwidth(32) / 1e9
    ));
    a.headers([
        "k",
        "Model sampling (GB/s)",
        "Memory line (GB/s)",
        "Software (Mitems/s)",
    ]);
    for k in [1usize, 2, 4, 8, 16, 32] {
        a.row([
            k.to_string(),
            format!("{:.2}", model_throughput_gbps(k, &dram)),
            format!("{:.2}", dram.streaming_bandwidth(32) / 1e9),
            format!("{:.1}", software_mitems_per_s(k, stream, opts.seed)),
        ]);
    }

    let mut b = Report::new("Figure 10b — WRS sampler throughput vs stream length (k = 16)");
    b.note("pipeline fill overhead only matters for tiny streams (paper: negligible)");
    b.headers([
        "Stream length",
        "Model throughput (GB/s)",
        "Software (Mitems/s)",
    ]);
    let peak = model_throughput_gbps(16, &dram);
    for exp in [6u32, 8, 10, 12, 14, 16] {
        let n = 1usize << exp;
        // Fill overhead: ~32-cycle pipeline depth amortized over n/k cycles.
        let batches = (n as f64 / 16.0).ceil();
        let eff = batches / (batches + 32.0);
        b.row([
            format!("2^{exp}"),
            format!("{:.2}", peak * eff),
            format!(
                "{:.1}",
                software_mitems_per_s(16, n, opts.seed ^ exp as u64)
            ),
        ]);
    }
    format!("{}{}", a.render(), b.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_saturates_at_memory_rate() {
        let dram = DramConfig::default();
        let t16 = model_throughput_gbps(16, &dram);
        let t32 = model_throughput_gbps(32, &dram);
        // k=16 already reaches the line rate; k=32 cannot exceed it.
        assert_eq!(t16, t32);
        assert!(model_throughput_gbps(1, &dram) < t16 / 8.0);
    }

    #[test]
    fn report_contains_both_panels() {
        let md = run(&Opts::quick());
        assert!(md.contains("Figure 10a"));
        assert!(md.contains("Figure 10b"));
        assert!(md.contains("2^16") || md.contains("2^6"));
    }
}
