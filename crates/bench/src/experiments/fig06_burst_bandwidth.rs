//! **Figure 6** — memory bandwidth and the ratio of valid data across
//! burst-length configurations (MetaPath access pattern on the
//! liveJournal stand-in).

use lightrw::memsim::bandwidth::fig6_sweep;
use lightrw::prelude::*;

use crate::table::Report;
use crate::Opts;

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let g = DatasetProfile::livejournal().stand_in(opts.scale, opts.seed);
    let dram = DramConfig::default();
    let sweep = fig6_sweep(&g, &dram);

    let mut report = Report::new("Figure 6 — bandwidth & valid-data ratio vs burst length");
    report.note(format!(
        "liveJournal stand-in at 2^{} vertices, avg degree {:.1}; channel model {:.1} GB/s peak",
        opts.scale,
        g.avg_degree(),
        dram.peak_bytes_per_sec() / 1e9
    ));
    report.note("paper: bandwidth 5.7 → 17.57 GB/s, valid ratio 91% → 8%");
    report.headers(["Burst length", "Bandwidth (GB/s)", "Valid data ratio"]);
    for p in &sweep {
        report.row([
            p.burst_beats.to_string(),
            format!("{:.2}", p.bandwidth_gbps),
            format!("{:.1}%", p.valid_ratio * 100.0),
        ]);
    }
    report.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_paper_columns() {
        let md = run(&Opts::quick());
        assert!(md.contains("Burst length"));
        assert!(md.contains("Valid data ratio"));
        // Eight burst lengths: 0,1,2,4,8,16,32,64.
        assert_eq!(md.lines().filter(|l| l.starts_with("| ")).count(), 9);
    }
}
