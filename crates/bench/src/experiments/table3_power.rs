//! **Table 3** — power consumption and power-efficiency improvement.
//!
//! Combines the Fig. 14 runtimes with the paper's measured power ranges
//! (xbutil / CPU Energy Meter constants in `lightrw::platform`).

use lightrw::power::compare;
use lightrw::{U250_PLATFORM, XEON_6246R};

use crate::experiments::fig14_speedup;
use crate::table::Report;
use crate::Opts;

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let rows = fig14_speedup::measure(opts);
    let mut report = Report::new("Table 3 — power efficiency: LightRW vs CPU baseline");
    report.note("power constants are the paper's measurements; runtimes from this run");
    report.note("paper: 15.05x-26.42x (MetaPath), 16.28x-24.10x (Node2Vec)");
    report.headers([
        "App",
        "LightRW power (W)",
        "CPU power (W)",
        "Efficiency improvement",
    ]);

    for app_name in ["MetaPath", "Node2Vec"] {
        let mut improvements: Vec<f64> = Vec::new();
        let mut kind = None;
        for r in rows.iter().filter(|r| r.app == app_name) {
            let cmp = compare(
                r.app_kind,
                &U250_PLATFORM,
                &XEON_6246R,
                r.lightrw_s,
                r.baseline_s,
            );
            improvements.push(cmp.efficiency_improvement);
            kind = Some(r.app_kind);
        }
        let kind = kind.expect("fig14 produced no rows");
        let (flo, fhi) = U250_PLATFORM.power_range_w(kind);
        let (clo, chi) = XEON_6246R.power_range_w(kind);
        let min = improvements.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = improvements.iter().cloned().fold(0.0f64, f64::max);
        report.row([
            app_name.to_string(),
            format!("{flo:.0}~{fhi:.0}"),
            format!("{clo:.0}~{chi:.0}"),
            format!("{min:.2}x ~ {max:.2}x"),
        ]);
    }
    report.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_both_apps_with_ranges() {
        let md = run(&Opts::quick());
        assert!(md.contains("MetaPath"));
        assert!(md.contains("Node2Vec"));
        assert!(md.contains("41~45"));
        assert!(md.contains("x ~ "));
    }
}
