//! **Figure 11** — cache miss ratio of the degree-aware cache (DAC) vs a
//! direct-mapped cache (DMC) vs uncached, on RMAT graphs of growing size
//! (cache fixed at 2^12 entries), running MetaPath walks through the full
//! accelerator model.

use lightrw::graph::generators::rmat_dataset;
use lightrw::prelude::*;

use crate::table::Report;
use crate::Opts;

fn miss_ratio(g: &Graph, policy: CachePolicy, quick: bool, seed: u64) -> f64 {
    let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
    let len = 5;
    // Enough queries that compulsory (cold) misses are amortized away and
    // the steady-state policy behaviour shows, as in the paper's Fig. 11
    // (where sub-cache-size graphs sit at ~0%).
    let n = if quick {
        (g.num_vertices() / 2).max(64)
    } else {
        (g.num_vertices() * 4).max(4096)
    };
    let qs = QuerySet::n_queries(g, n, len, seed);
    let cfg = LightRwConfig {
        cache_policy: policy,
        instances: 1,
        ..LightRwConfig::default()
    };
    let report = LightRwSim::new(g, &mp, cfg).run(&qs);
    report.cache_total().miss_ratio()
}

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let mut report = Report::new("Figure 11 — cache miss ratio: DAC vs DMC vs uncached");
    report.note("cache capacity 2^12 entries; MetaPath on rmat graphs (paper Fig. 11)");
    report.note("paper: DMC → ~100% while DAC stays far lower (49% at 2^18)");
    report.headers(["Graph (vertices)", "DAC miss", "DMC miss", "Uncached miss"]);

    let max_scale = if opts.quick {
        12
    } else {
        (opts.scale + 4).min(18)
    };
    let mut scale = 6;
    while scale <= max_scale {
        let g = rmat_dataset(scale, opts.seed ^ scale as u64);
        let dac = miss_ratio(&g, CachePolicy::DegreeAware, opts.quick, opts.seed);
        let dmc = miss_ratio(&g, CachePolicy::AlwaysReplace, opts.quick, opts.seed);
        let unc = miss_ratio(&g, CachePolicy::None, opts.quick, opts.seed);
        report.row([
            format!("2^{scale}"),
            format!("{:.1}%", dac * 100.0),
            format!("{:.1}%", dmc * 100.0),
            format!("{:.1}%", unc * 100.0),
        ]);
        scale += 2;
    }
    report.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dac_beats_dmc_beyond_cache_capacity() {
        // The Fig. 11 claim, as numbers: on a 2^14-vertex graph (4x the
        // 2^12-entry cache) the degree-aware policy must miss less.
        let g = rmat_dataset(14, 9);
        let dac = miss_ratio(&g, CachePolicy::DegreeAware, true, 1);
        let dmc = miss_ratio(&g, CachePolicy::AlwaysReplace, true, 1);
        let unc = miss_ratio(&g, CachePolicy::None, true, 1);
        assert!(dac < dmc, "DAC {dac:.3} vs DMC {dmc:.3}");
        assert!((unc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_graphs_fit_in_cache() {
        // A 2^8-vertex graph fits a 2^12-entry cache entirely; once the
        // workload is long enough to amortize cold misses, the miss ratio
        // must collapse (Fig. 11's left region).
        let g = rmat_dataset(8, 3);
        let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
        let qs = QuerySet::n_queries(&g, 4096, 5, 1);
        let cfg = LightRwConfig {
            instances: 1,
            ..LightRwConfig::default()
        };
        let r = LightRwSim::new(&g, &mp, cfg).run(&qs);
        let dac = r.cache_total().miss_ratio();
        assert!(dac < 0.10, "small graph miss ratio {dac}");
    }

    #[test]
    fn report_renders() {
        let md = run(&Opts::quick());
        assert!(md.contains("DAC miss"));
        assert!(md.contains("2^6"));
    }
}
