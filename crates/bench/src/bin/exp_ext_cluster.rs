//! Binary wrapper for the multi-board scaling extension (paper §8).

fn main() {
    let opts = lightrw_bench::Opts::from_args();
    print!("{}", lightrw_bench::experiments::ext_cluster::run(&opts));
}
