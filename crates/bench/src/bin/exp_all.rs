//! Run every experiment in paper order and print one combined report.
//!
//! `cargo run --release -p lightrw-bench --bin exp_all -- --scale 12`

use std::time::Instant;

fn main() {
    let opts = lightrw_bench::Opts::from_args();
    println!(
        "# LightRW reproduction — experiment suite (scale 2^{}, seed {})\n",
        opts.scale, opts.seed
    );
    for (id, runner) in lightrw_bench::experiments::all() {
        let t = Instant::now();
        let report = runner(&opts);
        print!("{report}");
        eprintln!(
            "[exp_all] {id} finished in {:.1}s",
            t.elapsed().as_secs_f64()
        );
    }
}
