//! Binary wrapper for the `fig10_wrs` experiment (see DESIGN.md §3).

fn main() {
    let opts = lightrw_bench::Opts::from_args();
    print!("{}", lightrw_bench::experiments::fig10_wrs::run(&opts));
}
