//! Binary wrapper for the `fig06_burst_bandwidth` experiment (see DESIGN.md §3).

fn main() {
    let opts = lightrw_bench::Opts::from_args();
    print!(
        "{}",
        lightrw_bench::experiments::fig06_burst_bandwidth::run(&opts)
    );
}
