//! Binary wrapper for the `table4_pcie` experiment (see DESIGN.md §3).

fn main() {
    let opts = lightrw_bench::Opts::from_args();
    print!("{}", lightrw_bench::experiments::table4_pcie::run(&opts));
}
