//! Binary wrapper for the `table3_power` experiment (see DESIGN.md §3).

fn main() {
    let opts = lightrw_bench::Opts::from_args();
    print!("{}", lightrw_bench::experiments::table3_power::run(&opts));
}
