//! Binary wrapper for the `table1_profiling` experiment (see DESIGN.md §3).

fn main() {
    let opts = lightrw_bench::Opts::from_args();
    print!(
        "{}",
        lightrw_bench::experiments::table1_profiling::run(&opts)
    );
}
