//! Binary wrapper for the `fig17_length` experiment (see DESIGN.md §3).

fn main() {
    let opts = lightrw_bench::Opts::from_args();
    print!("{}", lightrw_bench::experiments::fig17_length::run(&opts));
}
