//! Binary wrapper for the `fig11_cache` experiment (see DESIGN.md §3).

fn main() {
    let opts = lightrw_bench::Opts::from_args();
    print!("{}", lightrw_bench::experiments::fig11_cache::run(&opts));
}
