//! Binary wrapper for the `table5_resources` experiment (see DESIGN.md §3).

fn main() {
    let opts = lightrw_bench::Opts::from_args();
    print!(
        "{}",
        lightrw_bench::experiments::table5_resources::run(&opts)
    );
}
