//! Binary wrapper for the `fig13_breakdown` experiment (see DESIGN.md §3).

fn main() {
    let opts = lightrw_bench::Opts::from_args();
    print!(
        "{}",
        lightrw_bench::experiments::fig13_breakdown::run(&opts)
    );
}
