//! Binary wrapper for the `fig15_latency` experiment (see DESIGN.md §3).

fn main() {
    let opts = lightrw_bench::Opts::from_args();
    print!("{}", lightrw_bench::experiments::fig15_latency::run(&opts));
}
