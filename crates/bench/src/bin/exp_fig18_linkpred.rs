//! Binary wrapper for the `fig18_linkpred` experiment (see DESIGN.md §3).

fn main() {
    let opts = lightrw_bench::Opts::from_args();
    print!("{}", lightrw_bench::experiments::fig18_linkpred::run(&opts));
}
