//! Binary wrapper for the `fig14_speedup` experiment (see DESIGN.md §3).

fn main() {
    let opts = lightrw_bench::Opts::from_args();
    print!("{}", lightrw_bench::experiments::fig14_speedup::run(&opts));
}
