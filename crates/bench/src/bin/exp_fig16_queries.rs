//! Binary wrapper for the `fig16_queries` experiment (see DESIGN.md §3).

fn main() {
    let opts = lightrw_bench::Opts::from_args();
    print!("{}", lightrw_bench::experiments::fig16_queries::run(&opts));
}
