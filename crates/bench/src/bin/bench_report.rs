//! Hot-path throughput report: quick steps/sec presets for the CPU
//! baseline and the hwsim feeder, written as machine-readable JSON.
//!
//! This is the perf-trajectory seeder: CI runs `bench_report --quick` on
//! every push and uploads `BENCH_hotpath.json`, so hot-path regressions in
//! the per-step sampling loop (DESIGN.md §5) show up as a throughput drop
//! in the artifact history rather than silently distorting the Fig. 14
//! comparisons.
//!
//! The `throughput` rows sweep CPU worker lanes 1 → N (deduped by the
//! *resolved* worker count, so a small host never writes duplicate rows)
//! and add a single-threaded rejection-sampler row for second-order apps.
//! Two derived sections ride along: `node2vec_gap` (the uniform-vs-
//! Node2Vec per-step cost ratio per sampler — the §9 acceptance gate is
//! a sub-5× gap with rejection) and `sim_instance_scaling` (1 → 4 hwsim
//! pipeline instances in **model time**, the scaling curve that stays
//! meaningful on a single-core CI host). The config line records
//! `host_cores` so readers can interpret the lane sweep.
//!
//! Besides the per-engine `throughput` rows, the report carries a
//! `mixed_engine` section: all three backends (reference, CPU, simulated
//! accelerator) run **concurrently as interleaved batched sessions**
//! behind `&dyn WalkEngine` (DESIGN.md §6) — the multi-tenant batching
//! shape a serving host uses — and each reports its share of the
//! multiplexed wall clock.
//!
//! A second file, `BENCH_service.json` (`--out-service PATH`), carries
//! the `service_saturation` sweep: a fixed workload split across 1 → 8
//! concurrent tenants on the CPU backend, scheduled by the multi-tenant
//! `WalkService` (DESIGN.md §7). Aggregate steps/s must hold (or improve)
//! as tenancy grows — scheduler overhead showing up as a throughput cliff
//! is exactly the regression this artifact is meant to catch — while the
//! p50/p99 rows track how tail latency degrades with contention.
//!
//! A third file, `BENCH_programs.json` (`--out-programs PATH`), carries
//! the `program_mix` scenario: the walk-program surface (DESIGN.md §8) —
//! fixed-length, PPR restarts, dead-end restarts, target termination —
//! measured per program × backend on one workload, so control-flow
//! overhead on the hot path (the restart draw, the target probe) shows up
//! as a steps/s delta against the fixed-length row.
//!
//! A fourth file, `BENCH_scale.json` (`--out-scale PATH`, scenario
//! `graph_scale`), carries the out-of-core sweep (DESIGN.md §10):
//! per RMAT scale 12 → 22 (`--quick`: 8 → 10), stream-pack to a temp
//! `.lrwpak`, load it back via `mmap`, and run a multi-thread weighted
//! walk straight off the mapping — recording pack time, file size,
//! per-phase peak RSS and steps/s. The headline column is
//! `walk_rss_over_file`: the walk's resident footprint as a fraction of
//! the packed file, which must stay well below 1 at large scales.
//!
//! The same file also carries the `shard_scale` scenario (DESIGN.md
//! §11–§12): the partitioned engine on rmat-12 under Node2Vec, one row
//! per (K, strategy, threads) — sequential interleaves for K ∈
//! {1, 2, 4}, pinned parallel executors (`threads = K`) for the range
//! and walk-aware partitions — recording wall `steps_per_sec` *and*
//! `model_steps_per_sec` (modelled transfer + straggler-executor
//! compute, the number that stays meaningful when CI has fewer cores
//! than executors), measured vs expected crossing rate, hand-off counts
//! and modelled transfer cost, next to an unsharded reference row. Every
//! parallel run is asserted bit-identical to its sequential interleave
//! in-bench. A `compression` section records the packed-file shrink of
//! the varint neighbor-list encoding.
//!
//! A fifth file, `BENCH_serve_latency.json` (`--out-serve PATH`,
//! scenario `serve_latency`), carries the front-door serving sweep
//! (DESIGN.md §13): an in-process open-loop load generator drives the
//! scheduler + admission-control pair with Poisson arrivals from four
//! synthetic tenants at 0.25× → 2× of the calibrated capacity,
//! recording per level the admitted-job p50/p99 latency (plus its
//! queue-wait/execution split), throughput, and the shed rate. The
//! acceptance shape is *graceful degradation*: past saturation the
//! shed rate rises while admitted-job p99 stays bounded — an
//! ever-growing queue would instead show unbounded p99 with zero shed.
//!
//! ```text
//! cargo run --release -p lightrw-bench --bin bench_report -- --quick
//! cargo run --release -p lightrw-bench --bin bench_report -- program_mix --quick
//! cargo run --release -p lightrw-bench --bin bench_report -- --scale 13 \
//!     --baseline BENCH_before.json --out BENCH_hotpath.json
//! ```
//!
//! Positional arguments select scenarios (`hotpath`, `service`,
//! `program_mix`, `graph_scale`, `shard_scale`, `serve_latency`); none
//! selects the default `hotpath` + `service` pair, and each scenario
//! writes only its own JSON file.
//!
//! `--baseline PATH` embeds the `throughput` rows of a previous report (a
//! file this binary wrote) under `"baseline"`, giving one file with
//! machine-readable before/after numbers.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lightrw::graph::generators::rmat_dataset;
use lightrw::prelude::*;
use lightrw::service::{ServiceConfig, WalkService};

/// One measured engine × app × dataset row.
struct Row {
    dataset: String,
    app: &'static str,
    engine: &'static str,
    sampler: String,
    threads: usize,
    steps: u64,
    secs: f64,
}

impl Row {
    fn steps_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.steps as f64 / self.secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"dataset\": \"{}\", \"app\": \"{}\", \"engine\": \"{}\", \"sampler\": \"{}\", \
             \"threads\": {}, \"steps\": {}, \"secs\": {:.6}, \"steps_per_sec\": {:.1}}}",
            self.dataset,
            self.app,
            self.engine,
            self.sampler,
            self.threads,
            self.steps,
            self.secs,
            self.steps_per_sec()
        )
    }
}

struct ReportOpts {
    scale: u32,
    seed: u64,
    quick: bool,
    out: String,
    out_service: String,
    out_programs: String,
    out_scale: String,
    out_serve: String,
    baseline: Option<String>,
    /// Scenario names to run (`hotpath`, `service`, `program_mix`,
    /// `graph_scale`, `shard_scale`, `serve_latency`); empty = the
    /// default `hotpath` + `service` pair.
    scenarios: Vec<String>,
}

impl ReportOpts {
    fn from_args() -> Self {
        let mut o = Self {
            scale: 12,
            seed: 42,
            quick: false,
            out: "BENCH_hotpath.json".to_string(),
            out_service: "BENCH_service.json".to_string(),
            out_programs: "BENCH_programs.json".to_string(),
            out_scale: "BENCH_scale.json".to_string(),
            out_serve: "BENCH_serve_latency.json".to_string(),
            baseline: None,
            scenarios: Vec::new(),
        };
        const USAGE: &str =
            "usage: bench_report [hotpath|service|program_mix|graph_scale|shard_scale\
             |serve_latency ...] \
             --scale N --seed N --quick --out PATH --out-service PATH \
             --out-programs PATH --out-scale PATH --out-serve PATH --baseline PATH";
        fn die(msg: &str) -> ! {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2)
        }
        /// The flag's value: the next argument, required.
        fn value(args: &[String], i: &mut usize, flag: &str) -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
                .clone()
        }
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    o.scale = value(&args, &mut i, "--scale")
                        .parse()
                        .unwrap_or_else(|_| die("--scale needs an integer"));
                }
                "--seed" => {
                    o.seed = value(&args, &mut i, "--seed")
                        .parse()
                        .unwrap_or_else(|_| die("--seed needs an integer"));
                }
                "--quick" => o.quick = true,
                "--out" => o.out = value(&args, &mut i, "--out"),
                "--out-service" => o.out_service = value(&args, &mut i, "--out-service"),
                "--out-programs" => o.out_programs = value(&args, &mut i, "--out-programs"),
                "--out-scale" => o.out_scale = value(&args, &mut i, "--out-scale"),
                "--out-serve" => o.out_serve = value(&args, &mut i, "--out-serve"),
                "--baseline" => o.baseline = Some(value(&args, &mut i, "--baseline")),
                "--help" | "-h" => {
                    eprintln!("{USAGE}");
                    std::process::exit(0);
                }
                name @ ("hotpath" | "service" | "program_mix" | "graph_scale" | "shard_scale"
                | "serve_latency") => o.scenarios.push(name.to_string()),
                other => die(&format!("unknown option or scenario {other}")),
            }
            i += 1;
        }
        if o.quick {
            o.scale = o.scale.min(10);
        }
        if o.scenarios.is_empty() {
            o.scenarios = vec!["hotpath".to_string(), "service".to_string()];
        }
        o
    }

    fn runs(&self, scenario: &str) -> bool {
        self.scenarios.iter().any(|s| s == scenario)
    }
}

/// The quick preset apps: the three first-order profiles plus the
/// second-order Node2Vec, each with its paper-ish walk length.
fn apps(quick: bool) -> Vec<(Box<dyn WalkApp>, u32)> {
    let n2v_len = if quick { 8 } else { 40 };
    vec![
        (Box::new(Uniform) as Box<dyn WalkApp>, 10),
        (Box::new(StaticWeighted) as Box<dyn WalkApp>, 10),
        (
            Box::new(MetaPath::new(vec![0, 1, 0, 1, 0])) as Box<dyn WalkApp>,
            5,
        ),
        (
            Box::new(Node2Vec::paper_params()) as Box<dyn WalkApp>,
            n2v_len,
        ),
    ]
}

/// Requested CPU worker counts for the lane-scaling sweep: explicit
/// 1 → N plus the auto row (`0` = one lane per core). Quick keeps CI
/// cheap.
fn thread_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 2, 0]
    } else {
        vec![1, 2, 4, 8, 0]
    }
}

fn measure(name: &str, g: &Graph, opts: &ReportOpts, rows: &mut Vec<Row>) {
    for (app, len) in apps(opts.quick) {
        let qs = QuerySet::per_nonisolated_vertex(g, len, opts.seed);

        // CPU lane scaling, 1 → N worker lanes (threads = 1 is the
        // per-step path itself; the sweep is what Fig. 14's wall-clock
        // bars and the thread-scaling curve use). Deduped by *resolved*
        // worker count: the old `[1, 0]` pair wrote two identical rows on
        // a single-core host because both requests resolve to one worker.
        let mut resolved_seen: Vec<usize> = Vec::new();
        for requested in thread_sweep(opts.quick) {
            let resolved = lightrw::baseline::lanes::resolve_workers(requested);
            if resolved_seen.contains(&resolved) {
                continue;
            }
            resolved_seen.push(resolved);
            let cfg = BaselineConfig {
                threads: requested,
                seed: opts.seed,
                ..Default::default()
            };
            let engine = CpuEngine::new(g, app.as_ref(), cfg);
            let start = Instant::now();
            let (_, stats) = engine.run(&qs);
            let secs = start.elapsed().as_secs_f64();
            rows.push(Row {
                dataset: name.to_string(),
                app: app.name(),
                engine: "cpu",
                sampler: cfg.sampler.name(),
                threads: stats.threads,
                steps: stats.steps,
                secs,
            });
        }

        // Second-order apps only: the rejection-sampling fast path
        // (DESIGN.md §9), single-threaded so the node2vec_gap section
        // compares per-step cost, not parallelism.
        if matches!(
            app.weight_profile(),
            WeightProfile::SecondOrderEnvelope { .. }
        ) {
            let cfg = BaselineConfig {
                threads: 1,
                sampler: SamplerKind::Rejection,
                seed: opts.seed,
            };
            let engine = CpuEngine::new(g, app.as_ref(), cfg);
            let start = Instant::now();
            let (_, stats) = engine.run(&qs);
            rows.push(Row {
                dataset: name.to_string(),
                app: app.name(),
                engine: "cpu",
                sampler: cfg.sampler.name(),
                threads: stats.threads,
                steps: stats.steps,
                secs: start.elapsed().as_secs_f64(),
            });
        }

        // hwsim feeder: host wall-clock of the functional simulation — the
        // software loop this PR's fusion optimizes (model cycles are a
        // separate, unchanged story).
        let sim = LightRwSim::new(g, app.as_ref(), LightRwConfig::default());
        let start = Instant::now();
        let report = sim.run(&qs);
        let secs = start.elapsed().as_secs_f64();
        rows.push(Row {
            dataset: name.to_string(),
            app: app.name(),
            engine: "hwsim-feeder",
            sampler: format!("parallel-wrs(k={})", LightRwConfig::default().k),
            threads: 1,
            steps: report.steps,
            secs,
        });
    }
}

/// One engine's share of the mixed-engine interleaved-session scenario.
struct MixedRow {
    engine: String,
    batch: u64,
    steps: u64,
    /// Wall seconds this engine's `advance` calls consumed inside the
    /// multiplexing loop.
    secs: f64,
    batches: u64,
}

impl MixedRow {
    fn steps_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.steps as f64 / self.secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"engine\": \"{}\", \"batch\": {}, \"batches\": {}, \"steps\": {}, \
             \"secs\": {:.6}, \"steps_per_sec\": {:.1}}}",
            self.engine,
            self.batch,
            self.batches,
            self.steps,
            self.secs,
            self.steps_per_sec()
        )
    }
}

/// The batched mixed-engine scenario: one session per backend over the
/// same workload, advanced round-robin one bounded batch at a time —
/// no engine gets the host to itself, exactly like a multi-backend
/// serving tier. Walks stay bit-identical to each engine's monolithic
/// run (the session contract), so this measures pure batching overhead.
fn measure_mixed(name: &str, g: &Graph, opts: &ReportOpts, rows: &mut Vec<MixedRow>) {
    let app = Node2Vec::paper_params();
    let len = if opts.quick { 8 } else { 40 };
    let qs = QuerySet::per_nonisolated_vertex(g, len, opts.seed);
    let batch = 4096u64;

    let engines: Vec<Box<dyn WalkEngine + '_>> = vec![
        Box::new(ReferenceEngine::new(
            g,
            &app,
            SamplerKind::InverseTransform,
            opts.seed,
        )),
        Box::new(CpuEngine::new(
            g,
            &app,
            BaselineConfig {
                seed: opts.seed,
                ..Default::default()
            },
        )),
        Box::new(LightRwSim::new(
            g,
            &app,
            LightRwConfig {
                seed: opts.seed,
                ..LightRwConfig::default()
            },
        )),
    ];

    let mut sessions: Vec<_> = engines.iter().map(|e| e.start_session(&qs)).collect();
    let mut counters: Vec<CountingSink> = vec![CountingSink::default(); sessions.len()];
    let mut secs = vec![0.0f64; sessions.len()];
    let mut batches = vec![0u64; sessions.len()];
    let mut sinks: Vec<&mut dyn WalkSink> = counters
        .iter_mut()
        .map(|c| c as &mut dyn WalkSink)
        .collect();
    lightrw::walker::engine::multiplex_sessions(&mut sessions, &mut sinks, batch, |i, s, _| {
        secs[i] += s;
        batches[i] += 1;
    });
    drop(sinks);
    for ((engine, session), (counter, (s, b))) in engines
        .iter()
        .zip(&sessions)
        .zip(counters.iter().zip(secs.iter().zip(&batches)))
    {
        assert_eq!(counter.paths, qs.len(), "every path emitted exactly once");
        rows.push(MixedRow {
            engine: format!("{name}/{}", engine.label()),
            batch,
            steps: session.steps_done(),
            secs: *s,
            batches: *b,
        });
    }
}

/// One instance count of the `sim_instance_scaling` sweep. `secs` is
/// **simulated model time** (`SimReport::seconds`), not host wall clock:
/// the hwsim prices its processing-pipeline instances in the modeled
/// clock, so this is the scaling curve the accelerator would show, and
/// it stays meaningful on a single-core CI host where wall-clock lane
/// scaling cannot.
struct SimScaleRow {
    dataset: String,
    instances: usize,
    steps: u64,
    secs: f64,
}

impl SimScaleRow {
    fn steps_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.steps as f64 / self.secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"dataset\": \"{}\", \"instances\": {}, \"steps\": {}, \
             \"model_secs\": {:.6}, \"model_steps_per_sec\": {:.1}}}",
            self.dataset,
            self.instances,
            self.steps,
            self.secs,
            self.steps_per_sec()
        )
    }
}

/// The `sim_instance_scaling` sweep: the Uniform workload across 1 → 4
/// simulated processing-pipeline instances, in model time.
fn measure_sim_scaling(name: &str, g: &Graph, opts: &ReportOpts, rows: &mut Vec<SimScaleRow>) {
    let qs = QuerySet::per_nonisolated_vertex(g, 10, opts.seed);
    for instances in [1usize, 2, 4] {
        let cfg = LightRwConfig {
            instances,
            seed: opts.seed,
            ..LightRwConfig::default()
        };
        let report = LightRwSim::new(g, &Uniform, cfg).run(&qs);
        rows.push(SimScaleRow {
            dataset: name.to_string(),
            instances,
            steps: report.steps,
            secs: report.seconds,
        });
    }
}

/// One dataset's uniform-vs-node2vec per-step cost ratio at a fixed
/// sampler, single-threaded. The rejection row is the ISSUE acceptance
/// gate: the second-order gap must stay under 5× with the envelope
/// fast path.
struct GapRow {
    dataset: String,
    sampler: String,
    uniform_sps: f64,
    node2vec_sps: f64,
}

impl GapRow {
    fn gap(&self) -> f64 {
        if self.node2vec_sps > 0.0 {
            self.uniform_sps / self.node2vec_sps
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"dataset\": \"{}\", \"sampler\": \"{}\", \"uniform_steps_per_sec\": {:.1}, \
             \"node2vec_steps_per_sec\": {:.1}, \"gap\": {:.3}}}",
            self.dataset,
            self.sampler,
            self.uniform_sps,
            self.node2vec_sps,
            self.gap()
        )
    }
}

/// Derive the `node2vec_gap` section from the measured throughput rows:
/// for each dataset, pair every single-threaded CPU node2vec row with
/// the single-threaded uniform row (always inverse-transform — uniform
/// rows don't vary by sampler in the sweep) and report the ratio.
fn node2vec_gaps(rows: &[Row]) -> Vec<GapRow> {
    let single = |r: &&Row| r.engine == "cpu" && r.threads == 1;
    rows.iter()
        .filter(single)
        .filter(|r| r.app == "Node2Vec")
        .filter_map(|n2v| {
            rows.iter()
                .filter(single)
                .find(|r| r.app == "Uniform" && r.dataset == n2v.dataset)
                .map(|uni| GapRow {
                    dataset: n2v.dataset.clone(),
                    sampler: n2v.sampler.clone(),
                    uniform_sps: uni.steps_per_sec(),
                    node2vec_sps: n2v.steps_per_sec(),
                })
        })
        .collect()
}

/// One tenancy level of the `service_saturation` sweep.
struct SaturationRow {
    tenants: usize,
    jobs: usize,
    steps: u64,
    secs: f64,
    p50_ms: f64,
    p99_ms: f64,
}

impl SaturationRow {
    fn steps_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.steps as f64 / self.secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"tenants\": {}, \"jobs\": {}, \"steps\": {}, \"secs\": {:.6}, \
             \"steps_per_sec\": {:.1}, \"p50_latency_ms\": {:.3}, \"p99_latency_ms\": {:.3}}}",
            self.tenants,
            self.jobs,
            self.steps,
            self.secs,
            self.steps_per_sec(),
            self.p50_ms,
            self.p99_ms
        )
    }
}

/// The `service_saturation` scenario: a fixed node2vec workload split
/// across 1 → 8 concurrent tenants (two jobs each) on the CPU backend,
/// scheduled by the multi-tenant `WalkService`. Total work is constant
/// across tenancy levels, so aggregate steps/s isolates scheduler cost:
/// it must stay flat (or improve) as tenancy grows, while p50/p99 job
/// latency records the tail cost of contention. Each level keeps the
/// better of two repetitions to damp wall-clock noise on shared CI
/// runners.
fn measure_service_saturation(
    name: &str,
    g: &Graph,
    opts: &ReportOpts,
    rows: &mut Vec<SaturationRow>,
) {
    let app = Node2Vec::paper_params();
    let len = if opts.quick { 8 } else { 40 };
    let total_queries = 4096usize;
    let backend = Backend::Cpu {
        threads: 0,
        sampler: SamplerKind::InverseTransform,
    };
    for tenants in [1usize, 2, 4, 8] {
        let mut best: Option<SaturationRow> = None;
        for rep in 0..2 {
            let pool = backend.build_pool(g, &app, opts.seed + rep, 1);
            let workers: Vec<&dyn WalkEngine> = pool.iter().map(|e| e.as_ref()).collect();
            let mut service = WalkService::new(
                workers,
                ServiceConfig {
                    quantum: 2048,
                    ..Default::default()
                },
            );
            let jobs_per_tenant = 2usize;
            let per_job = total_queries / (tenants * jobs_per_tenant);
            let t = Instant::now();
            for tenant in 0..tenants {
                for j in 0..jobs_per_tenant {
                    let qs = QuerySet::n_queries(
                        g,
                        per_job,
                        len,
                        opts.seed ^ (((tenant * jobs_per_tenant + j) as u64) << 8),
                    );
                    service.submit(JobSpec::tenant(tenant as u32), qs);
                }
            }
            service.run_until_idle();
            let secs = t.elapsed().as_secs_f64();
            let stats = service.stats();
            let row = SaturationRow {
                tenants,
                jobs: tenants * jobs_per_tenant,
                steps: stats.total_steps,
                secs,
                p50_ms: stats.p50_latency_s * 1e3,
                p99_ms: stats.p99_latency_s * 1e3,
            };
            if best
                .as_ref()
                .is_none_or(|b| row.steps_per_sec() > b.steps_per_sec())
            {
                best = Some(row);
            }
        }
        let best = best.expect("two repetitions ran");
        eprintln!(
            "service_saturation {name}: {} tenants -> {} ({:.2} ms p99)",
            best.tenants,
            lightrw_bench::fmt_rate(best.steps_per_sec()),
            best.p99_ms
        );
        rows.push(best);
    }
}

/// One offered-load level of the `serve_latency` scenario.
struct ServeLatencyRow {
    /// Offered load as a multiple of the calibrated step capacity.
    offered_x: f64,
    /// Aggregate Poisson arrival rate across tenants, jobs/s.
    offered_jobs_per_s: f64,
    tenants: usize,
    submitted: u64,
    admitted: u64,
    shed_tenant_rate: u64,
    shed_queue_depth: u64,
    completed: usize,
    steps: u64,
    secs: f64,
    p50_ms: f64,
    p99_ms: f64,
    p99_queue_wait_ms: f64,
    p99_exec_ms: f64,
}

impl ServeLatencyRow {
    fn shed(&self) -> u64 {
        self.shed_tenant_rate + self.shed_queue_depth
    }

    fn shed_rate(&self) -> f64 {
        if self.submitted > 0 {
            self.shed() as f64 / self.submitted as f64
        } else {
            0.0
        }
    }

    fn steps_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.steps as f64 / self.secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"offered_x\": {:.2}, \"offered_jobs_per_s\": {:.1}, \"tenants\": {}, \
             \"submitted\": {}, \"admitted\": {}, \"shed\": {}, \
             \"shed_tenant_rate\": {}, \"shed_queue_depth\": {}, \"shed_rate\": {:.4}, \
             \"completed\": {}, \"steps_per_sec\": {:.1}, \
             \"p50_latency_ms\": {:.3}, \"p99_latency_ms\": {:.3}, \
             \"p99_queue_wait_ms\": {:.3}, \"p99_exec_ms\": {:.3}}}",
            self.offered_x,
            self.offered_jobs_per_s,
            self.tenants,
            self.submitted,
            self.admitted,
            self.shed(),
            self.shed_tenant_rate,
            self.shed_queue_depth,
            self.shed_rate(),
            self.completed,
            self.steps_per_sec(),
            self.p50_ms,
            self.p99_ms,
            self.p99_queue_wait_ms,
            self.p99_exec_ms
        )
    }
}

/// SplitMix64: the load generator's arrival-time source. Hand-rolled so
/// the sweep is reproducible from `--seed` with no external RNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One exponential inter-arrival draw (seconds) at `rate` arrivals/s —
/// the open-loop Poisson process behind the `serve_latency` sweep.
fn exp_interarrival(state: &mut u64, rate: f64) -> f64 {
    let u = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
    -(1.0 - u).ln() / rate
}

/// The `serve_latency` scenario (DESIGN.md §13): the front door's
/// scheduler + admission-control pair under open-loop Poisson load,
/// in-process (no sockets, so the sweep isolates scheduling and shedding
/// from kernel TCP noise). A closed-loop burst first calibrates the
/// pool's step capacity; each level then offers `offered_x ×` that
/// capacity as fixed-shape jobs from four tenants, routing every arrival
/// through [`Admission::check`] exactly as `serve --listen` does.
///
/// The acceptance shape is graceful degradation: below 1× nothing sheds
/// and latency is flat; past 1× the shed rate climbs while the
/// admitted-job p99 stays bounded by the queue high-water — the
/// unbounded-queue alternative would show p99 growing with the window
/// length instead.
fn measure_serve_latency(
    name: &str,
    g: &Graph,
    opts: &ReportOpts,
    rows: &mut Vec<ServeLatencyRow>,
) {
    use lightrw::http::{Admission, AdmissionConfig, Verdict};

    let tenants = 4usize;
    let queries = 32usize;
    let len: u32 = if opts.quick { 8 } else { 24 };
    let cost = queries as u64 * len as u64;
    let backend = Backend::Cpu {
        threads: 0,
        sampler: SamplerKind::InverseTransform,
    };
    // A finite per-tenant pending-steps quota (8 jobs' worth) is what
    // makes the queue high-water meaningful: without it every admitted
    // job starts running immediately and the waiting queue — the thing
    // admission control watches — never fills, so overload shows up as
    // unbounded concurrency (and unbounded p99) instead of shedding.
    let service_cfg = ServiceConfig {
        quantum: 2048,
        tenant_pending_steps: 8 * cost,
    };

    // Calibrate: a saturating closed-loop burst measures the sustainable
    // steps/s that anchors the offered-load axis.
    let capacity = {
        let pool = backend.build_pool(g, &Uniform, opts.seed, 1);
        let workers: Vec<&dyn WalkEngine> = pool.iter().map(|e| e.as_ref()).collect();
        let mut service = WalkService::new(workers, service_cfg);
        let t = Instant::now();
        for j in 0..24u64 {
            let qs = QuerySet::n_queries(g, queries, len, opts.seed ^ (j << 8));
            service.submit(JobSpec::tenant((j as usize % tenants) as u32), qs);
        }
        service.run_until_idle();
        let secs = t.elapsed().as_secs_f64().max(1e-6);
        service.stats().total_steps as f64 / secs
    };
    eprintln!(
        "serve_latency {name}: calibrated capacity {}",
        lightrw_bench::fmt_rate(capacity)
    );

    let window_s = if opts.quick { 0.4 } else { 1.5 };
    for offered_x in [0.25, 0.5, 1.0, 1.5, 2.0] {
        // Pre-draw the window's Poisson arrival times so generation cost
        // stays off the measured loop.
        let lambda = (capacity * offered_x / cost as f64).max(1e-6);
        let mut state = opts.seed ^ ((offered_x * 100.0) as u64).wrapping_mul(0x9e37);
        let mut arrivals = Vec::new();
        let mut at = 0.0f64;
        loop {
            at += exp_interarrival(&mut state, lambda);
            if at >= window_s {
                break;
            }
            arrivals.push(at);
        }

        let pool = backend.build_pool(g, &Uniform, opts.seed, 1);
        let workers: Vec<&dyn WalkEngine> = pool.iter().map(|e| e.as_ref()).collect();
        let mut service = WalkService::new(workers, service_cfg);
        // Per-tenant rate 0.3× capacity (aggregate 1.2×) with a shallow
        // queue: past saturation the queue high-water sheds first, so
        // admitted jobs keep a bounded wait.
        let mut admission = Admission::new(AdmissionConfig {
            rate_steps_per_s: 0.3 * capacity,
            burst_steps: 4.0 * cost as f64,
            queue_high_water: 16,
        });
        let t0 = Instant::now();
        let mut next = 0usize;
        while next < arrivals.len() || !service.is_idle() {
            let now_s = t0.elapsed().as_secs_f64();
            while next < arrivals.len() && arrivals[next] <= now_s {
                let tenant = (next % tenants) as u32;
                let verdict = admission.check(tenant, cost, service.waiting_len(), Instant::now());
                if let Verdict::Admit = verdict {
                    let qs = QuerySet::n_queries(g, queries, len, opts.seed ^ ((next as u64) << 8));
                    service.submit_streaming(
                        JobSpec::tenant(tenant),
                        qs,
                        // Paths are dropped: the scenario measures
                        // scheduling latency, not collection.
                        Box::new(|_: u32, _: &[lightrw::graph::VertexId]| {}),
                    );
                }
                next += 1;
            }
            if service.is_idle() {
                if next < arrivals.len() {
                    // Open-loop gap with nothing running: sleep toward the
                    // next arrival instead of spinning.
                    let wait = arrivals[next] - t0.elapsed().as_secs_f64();
                    if wait > 0.0 {
                        std::thread::sleep(Duration::from_secs_f64(wait.min(0.002)));
                    }
                }
            } else {
                service.tick();
            }
        }
        let secs = t0.elapsed().as_secs_f64().max(1e-6);
        let stats = service.stats();
        let row = ServeLatencyRow {
            offered_x,
            offered_jobs_per_s: lambda,
            tenants,
            submitted: arrivals.len() as u64,
            admitted: admission.admitted,
            shed_tenant_rate: admission.shed_tenant_rate,
            shed_queue_depth: admission.shed_queue_depth,
            completed: stats.completed_jobs,
            steps: stats.total_steps,
            secs,
            p50_ms: stats.p50_latency_s * 1e3,
            p99_ms: stats.p99_latency_s * 1e3,
            p99_queue_wait_ms: stats.p99_queue_wait_s * 1e3,
            p99_exec_ms: stats.p99_exec_s * 1e3,
        };
        eprintln!(
            "serve_latency {name}: {:.2}x offered -> {} admitted / {} shed ({:.0}% shed), \
             p99 {:.2} ms",
            row.offered_x,
            row.admitted,
            row.shed(),
            row.shed_rate() * 100.0,
            row.p99_ms
        );
        rows.push(row);
    }
}

/// One program × engine row of the `program_mix` scenario.
struct ProgramRow {
    program: String,
    engine: &'static str,
    steps: u64,
    paths: usize,
    secs: f64,
}

impl ProgramRow {
    fn steps_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.steps as f64 / self.secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"program\": \"{}\", \"engine\": \"{}\", \"steps\": {}, \"paths\": {}, \
             \"secs\": {:.6}, \"steps_per_sec\": {:.1}}}",
            self.program,
            self.engine,
            self.steps,
            self.paths,
            self.secs,
            self.steps_per_sec()
        )
    }
}

/// The `program_mix` scenario: the composable walk-program surface
/// (DESIGN.md §8) on one workload — fixed-length (the control row), PPR
/// restarts, dead-end restarts and target termination — per backend.
/// Control flow rides the same hot path as the fixed walk, so the
/// fixed-vs-program steps/s gap isolates the cost of the restart draw
/// and the target probe.
fn measure_program_mix(name: &str, g: &Graph, opts: &ReportOpts, rows: &mut Vec<ProgramRow>) {
    let cap = if opts.quick { 16 } else { 64 };
    let targets = Arc::new(NeighborBitset::from_members(
        g.num_vertices(),
        (0..g.num_vertices()).step_by(13),
    ));
    let programs = [
        WalkProgram::fixed(cap),
        WalkProgram::ppr(0.15, cap),
        WalkProgram::ppr(0.15, cap).with_dead_end(DeadEndPolicy::Restart),
        WalkProgram::fixed(cap).with_targets(targets),
    ];
    for program in &programs {
        let qs = QuerySet::per_nonisolated_vertex(g, 1, opts.seed).with_program(program.clone());

        let cfg = BaselineConfig {
            seed: opts.seed,
            ..Default::default()
        };
        let engine = CpuEngine::new(g, &Uniform, cfg);
        let start = Instant::now();
        let (results, stats) = engine.run(&qs);
        rows.push(ProgramRow {
            program: format!("{name}/{program}"),
            engine: "cpu",
            steps: stats.steps,
            paths: results.len(),
            secs: start.elapsed().as_secs_f64(),
        });

        let sim = LightRwSim::new(
            g,
            &Uniform,
            LightRwConfig {
                seed: opts.seed,
                ..LightRwConfig::default()
            },
        );
        let start = Instant::now();
        let report = sim.run(&qs);
        rows.push(ProgramRow {
            program: format!("{name}/{program}"),
            engine: "hwsim-feeder",
            steps: report.steps,
            paths: report.results.len(),
            secs: start.elapsed().as_secs_f64(),
        });
    }
}

/// One scale of the `graph_scale` out-of-core sweep: a streamed pack to
/// a temp `.lrwpak`, then an mmap-backed multi-thread walk off that
/// file. `walk_peak_rss` vs `file_bytes` is the headline — the walk's
/// resident footprint must stay well below the file it samples from.
struct ScaleRow {
    dataset: String,
    sampler: String,
    vertices: usize,
    edges: usize,
    file_bytes: u64,
    pack_secs: f64,
    pack_peak_rss: u64,
    /// Sections backed by a live mapping (false = heap fallback host).
    mapped: bool,
    /// Resident bytes right after `load_packed`, before any walk.
    load_rss: u64,
    steps: u64,
    secs: f64,
    walk_peak_rss: u64,
}

impl ScaleRow {
    fn steps_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.steps as f64 / self.secs
        } else {
            0.0
        }
    }

    /// Walk-phase peak RSS as a fraction of the packed file size; the
    /// out-of-core promise is that this stays < 1 at large scales.
    fn rss_over_file(&self) -> f64 {
        if self.file_bytes > 0 {
            self.walk_peak_rss as f64 / self.file_bytes as f64
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"dataset\": \"{}\", \"sampler\": \"{}\", \"vertices\": {}, \"edges\": {}, \
             \"file_bytes\": {}, \"pack_secs\": {:.3}, \"pack_peak_rss\": {}, \
             \"mapped\": {}, \"load_rss\": {}, \"steps\": {}, \"secs\": {:.6}, \
             \"steps_per_sec\": {:.1}, \"walk_peak_rss\": {}, \"walk_rss_over_file\": {:.4}}}",
            self.dataset,
            self.sampler,
            self.vertices,
            self.edges,
            self.file_bytes,
            self.pack_secs,
            self.pack_peak_rss,
            self.mapped,
            self.load_rss,
            self.steps,
            self.secs,
            self.steps_per_sec(),
            self.walk_peak_rss,
            self.rss_over_file()
        )
    }
}

/// The `graph_scale` scenario: the out-of-core pipeline end to end, per
/// scale — stream-pack an RMAT dataset to a temp `.lrwpak` (bounded by
/// the sort chunk, DESIGN.md §10), mmap it back, and run a multi-thread
/// weighted walk per sampler straight off the mapping. RSS is probed
/// per phase (`VmHWM`, reset between phases) so the pack chunk cannot
/// mask the walk footprint. The temp file is removed per scale, so the
/// sweep's disk high-water mark is one packed graph.
fn measure_graph_scale(opts: &ReportOpts, rows: &mut Vec<ScaleRow>) {
    use lightrw::graph::pack::{pack_rmat_dataset, PackOptions};
    use lightrw::graph::packed::load_packed;
    use lightrw::graph::LoadMode;
    use lightrw_bench::rss;

    let scales: Vec<u32> = if opts.quick {
        vec![8, 10]
    } else {
        vec![12, 14, 16, 18, 20, 22]
    };
    for scale in scales {
        let name = format!("rmat-{scale}");
        let path = std::env::temp_dir().join(format!(
            "lightrw_scale_{scale}_{}.lrwpak",
            std::process::id()
        ));

        rss::reset_peak_rss();
        let t = Instant::now();
        let stats = pack_rmat_dataset(scale, opts.seed, &path, &PackOptions::default())
            .expect("pack rmat dataset");
        let pack_secs = t.elapsed().as_secs_f64();
        let pack_peak_rss = rss::peak_rss_bytes();
        eprintln!(
            "graph_scale {name}: packed |V|={} |E|={} -> {} bytes in {}",
            stats.vertices,
            stats.edges,
            stats.file_bytes,
            lightrw_bench::fmt_secs(pack_secs)
        );

        for sampler in [SamplerKind::InverseTransform, SamplerKind::AExpJ] {
            rss::reset_peak_rss();
            let loaded = load_packed(&path, LoadMode::Auto).expect("load packed graph");
            let load_rss = rss::current_rss_bytes();
            let g = &loaded.graph;
            let queries = if opts.quick { 10_000 } else { 100_000 }.min(g.num_vertices());
            let qs = QuerySet::n_queries(g, queries, 10, opts.seed);
            let cfg = BaselineConfig {
                threads: 0,
                sampler,
                seed: opts.seed,
            };
            let engine = CpuEngine::new(g, &StaticWeighted, cfg);
            let t = Instant::now();
            let (_, wstats) = engine.run(&qs);
            let row = ScaleRow {
                dataset: name.clone(),
                sampler: sampler.name(),
                vertices: stats.vertices,
                edges: stats.edges,
                file_bytes: stats.file_bytes,
                pack_secs,
                pack_peak_rss,
                mapped: loaded.mapped,
                load_rss,
                steps: wstats.steps,
                secs: t.elapsed().as_secs_f64(),
                walk_peak_rss: rss::peak_rss_bytes(),
            };
            eprintln!(
                "graph_scale {name}/{}: {} over {} threads, walk peak RSS {} MB \
                 ({:.0}% of file)",
                row.sampler,
                lightrw_bench::fmt_rate(row.steps_per_sec()),
                wstats.threads,
                row.walk_peak_rss >> 20,
                row.rss_over_file() * 100.0
            );
            rows.push(row);
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// One partitioned-engine run of the `shard_scale` scenario. `shards = 0`
/// encodes the unsharded reference row (the K = 1 noise baseline).
struct ShardRow {
    dataset: String,
    shards: usize,
    /// Partition strategy name ("none" for the unsharded reference).
    strategy: &'static str,
    /// Executor threads the engine resolved to (1 = the sequential
    /// interleave, k = one pinned executor per shard).
    threads: usize,
    steps: u64,
    secs: f64,
    /// Boundary edges / all edges: the expected per-step hand-off
    /// probability under uniform edge use.
    crossing_expected: f64,
    hand_offs: u64,
    flushes: u64,
    transfer_bytes: u64,
    transfer_s: f64,
    /// The compute half of the session's model clock (`model_seconds =
    /// transfer_s + compute_s`): measured wall seconds inside `advance`
    /// for the sequential interleave, the straggler executor's busy time
    /// for parallel rows — so the rate it implies survives CI hosts with
    /// fewer cores than executors, where `secs` serializes the overlap.
    compute_s: f64,
}

impl ShardRow {
    fn steps_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.steps as f64 / self.secs
        } else {
            0.0
        }
    }

    /// Hand-offs per executed step — the measured crossing rate.
    fn crossing_measured(&self) -> f64 {
        if self.steps > 0 {
            self.hand_offs as f64 / self.steps as f64
        } else {
            0.0
        }
    }

    /// Steps per second of *model* time (transfer + compute clock) — the
    /// number that compares sequential and parallel rows fairly on any
    /// host. 0.0 for the unsharded reference row, which has no model.
    fn model_steps_per_sec(&self) -> f64 {
        let model_s = self.transfer_s + self.compute_s;
        if model_s > 0.0 {
            self.steps as f64 / model_s
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"dataset\": \"{}\", \"shards\": {}, \"strategy\": \"{}\", \
             \"threads\": {}, \"steps\": {}, \"secs\": {:.6}, \
             \"steps_per_sec\": {:.1}, \"crossing_expected\": {:.6}, \
             \"crossing_measured\": {:.6}, \"hand_offs\": {}, \"flushes\": {}, \
             \"transfer_bytes\": {}, \"transfer_s\": {:.9}, \"compute_s\": {:.9}, \
             \"model_steps_per_sec\": {:.1}}}",
            self.dataset,
            self.shards,
            self.strategy,
            self.threads,
            self.steps,
            self.secs,
            self.steps_per_sec(),
            self.crossing_expected,
            self.crossing_measured(),
            self.hand_offs,
            self.flushes,
            self.transfer_bytes,
            self.transfer_s,
            self.compute_s,
            self.model_steps_per_sec(),
        )
    }
}

/// One plain-vs-varint packed-file size comparison.
struct CompressionRow {
    dataset: String,
    plain_bytes: u64,
    compressed_bytes: u64,
}

impl CompressionRow {
    fn ratio(&self) -> f64 {
        if self.plain_bytes > 0 {
            self.compressed_bytes as f64 / self.plain_bytes as f64
        } else {
            1.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"dataset\": \"{}\", \"plain_bytes\": {}, \"compressed_bytes\": {}, \
             \"ratio\": {:.4}}}",
            self.dataset,
            self.plain_bytes,
            self.compressed_bytes,
            self.ratio()
        )
    }
}

/// `key=N` field of a sharded session's diagnostics line.
fn diag_field(diag: &str, key: &str) -> u64 {
    diag.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// `key=F` float field of a sharded session's diagnostics line. The
/// session's `model_seconds` folds compute into the total since the
/// straggler-accounting fix, so the transfer share is only available
/// through the diagnostics breakdown.
fn diag_field_f64(diag: &str, key: &str) -> f64 {
    diag.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key))
        .and_then(|v| v.trim_end_matches(',').parse().ok())
        .unwrap_or(0.0)
}

/// The `shard_scale` scenario: the partitioned engine (DESIGN.md §11–§12)
/// on one RMAT dataset against an unsharded reference row, sweeping shard
/// count, executor thread count and partition strategy:
///
/// - K ∈ {1, 2, 4} sequential (threads = 1): K = 1 is the bit-identical
///   fast path and must sit within noise of the reference; K ≥ 2 records
///   the hand-off rate and the modelled transfer cost of the crossings.
/// - K ∈ {2, 4} with one pinned executor per shard: the parallel rows,
///   asserted in-bench to sample the exact walks of the sequential
///   schedule before they are timed.
/// - The walk-aware partition strategy at the same K, whose *measured*
///   crossing rate is the number the partitioner optimizes.
///
/// A compression row (plain vs varint-packed file bytes) rides along.
/// The dataset floor is rmat-12 so the acceptance comparison (parallel
/// vs sequential K = 2) always runs on a graph with enough work to
/// overlap, even under `--quick`.
fn measure_shard_scale(
    opts: &ReportOpts,
    rows: &mut Vec<ShardRow>,
    comp: &mut Vec<CompressionRow>,
) {
    use lightrw::graph::{pack, partition_graph, ShardStrategy};
    use lightrw::sharded::ShardedEngine;

    let scale = opts.scale.max(12);
    let name = format!("rmat-{scale}");
    let mut g = rmat_dataset(scale, opts.seed);
    g.build_prefix_cache();
    // The paper's flagship second-order app: hand-offs carry prev-row
    // payloads and each step does real sampling work, which is the
    // regime where overlapping crossings with compute pays.
    let app = Node2Vec::paper_params();
    let queries = if opts.quick { 20_000 } else { 100_000 };
    let qs = QuerySet::n_queries(&g, queries, 20, opts.seed);

    // The unsharded noise baseline: the same sequential loop K = 1
    // replays, on the same graph and seed.
    {
        let engine = ReferenceEngine::new(&g, &app, SamplerKind::InverseTransform, opts.seed);
        let mut sink = CountingSink::default();
        let t = Instant::now();
        let (steps, _) = (&engine as &dyn WalkEngine).stream_into(&qs, u64::MAX, &mut sink);
        rows.push(ShardRow {
            dataset: name.clone(),
            shards: 0,
            strategy: "none",
            threads: 1,
            steps,
            secs: t.elapsed().as_secs_f64(),
            crossing_expected: 0.0,
            hand_offs: 0,
            flushes: 0,
            transfer_bytes: 0,
            transfer_s: 0.0,
            compute_s: 0.0,
        });
    }

    let configs: [(usize, usize, ShardStrategy); 7] = [
        (1, 1, ShardStrategy::Range),
        (2, 1, ShardStrategy::Range),
        (4, 1, ShardStrategy::Range),
        (2, 2, ShardStrategy::Range),
        (4, 4, ShardStrategy::Range),
        (2, 2, ShardStrategy::Walk),
        (4, 4, ShardStrategy::Walk),
    ];
    for (k, threads, strategy) in configs {
        let engine = ShardedEngine::new(
            partition_graph(&g, k, strategy),
            &app,
            SamplerKind::InverseTransform,
            opts.seed,
        )
        .with_shard_threads(threads);
        let crossing_expected = engine.sharded().crossing_rate();
        if threads > 1 {
            // Schedule-independence gate: the parallel executors must
            // sample the sequential interleave's walks exactly before
            // their timing row means anything.
            let sequential = ShardedEngine::new(
                partition_graph(&g, k, strategy),
                &app,
                SamplerKind::InverseTransform,
                opts.seed,
            );
            assert_eq!(
                engine.run_collected(&qs),
                sequential.run_collected(&qs),
                "parallel schedule changed walks (k={k} threads={threads} {})",
                strategy.name()
            );
        }
        let mut sink = CountingSink::default();
        let t = Instant::now();
        let mut session = engine.start_session(&qs);
        while !session.finished() {
            session.advance(u64::MAX, &mut sink);
        }
        let secs = t.elapsed().as_secs_f64();
        let diag = session.diagnostics().unwrap_or_default();
        let row = ShardRow {
            dataset: name.clone(),
            shards: k,
            strategy: strategy.name(),
            threads,
            steps: session.steps_done(),
            secs,
            crossing_expected,
            hand_offs: diag_field(&diag, "hand-offs="),
            flushes: diag_field(&diag, "flushes="),
            transfer_bytes: diag_field(&diag, "transfer-bytes="),
            transfer_s: diag_field_f64(&diag, "transfer-s="),
            compute_s: diag_field_f64(&diag, "compute-s="),
        };
        eprintln!(
            "shard_scale {name} k={k} threads={threads} {}: {} wall, {} model, \
             crossing {:.4} (expected {:.4}) transfer {:.3} ms",
            strategy.name(),
            lightrw_bench::fmt_rate(row.steps_per_sec()),
            lightrw_bench::fmt_rate(row.model_steps_per_sec()),
            row.crossing_measured(),
            row.crossing_expected,
            row.transfer_s * 1e3,
        );
        rows.push(row);
    }

    // The varint neighbor-list shrink on the same dataset.
    let pid = std::process::id();
    let plain_path = std::env::temp_dir().join(format!("lightrw_shard_plain_{pid}.lrwpak"));
    let comp_path = std::env::temp_dir().join(format!("lightrw_shard_varint_{pid}.lrwpak"));
    let plain_bytes =
        pack::pack_graph_with(&mut g, false, 0, ShardStrategy::Range, false, &plain_path)
            .expect("pack plain");
    let compressed_bytes =
        pack::pack_graph_with(&mut g, false, 0, ShardStrategy::Range, true, &comp_path)
            .expect("pack varint");
    let _ = std::fs::remove_file(&plain_path);
    let _ = std::fs::remove_file(&comp_path);
    let row = CompressionRow {
        dataset: name,
        plain_bytes,
        compressed_bytes,
    };
    eprintln!(
        "shard_scale compression: {} -> {} bytes ({:.1}% of plain)",
        row.plain_bytes,
        row.compressed_bytes,
        row.ratio() * 100.0
    );
    comp.push(row);
}

/// Pull the `"throughput": [...]` rows (one per line, as this binary
/// writes them) out of a previous report for the before/after embedding.
fn extract_rows(json: &str) -> Vec<String> {
    let mut rows = Vec::new();
    let mut in_rows = false;
    for line in json.lines() {
        let t = line.trim();
        if t.starts_with("\"throughput\"") {
            in_rows = true;
            continue;
        }
        if in_rows {
            if t == "]" || t == "]," {
                break;
            }
            rows.push(t.trim_end_matches(',').to_string());
        }
    }
    rows
}

fn main() {
    let opts = ReportOpts::from_args();
    let mut rows = Vec::new();

    // `graph_scale` builds its own packed datasets on disk; only the
    // in-memory scenarios need the stand-in graphs materialized here.
    let needs_datasets = opts.runs("hotpath")
        || opts.runs("service")
        || opts.runs("program_mix")
        || opts.runs("serve_latency");
    let datasets: Vec<(String, Graph)> = if !needs_datasets {
        Vec::new()
    } else if opts.quick {
        vec![(
            format!("rmat-{}", opts.scale),
            rmat_dataset(opts.scale, opts.seed),
        )]
    } else {
        vec![
            (
                format!("rmat-{}", opts.scale),
                rmat_dataset(opts.scale, opts.seed),
            ),
            (
                "youtube".to_string(),
                DatasetProfile::youtube().stand_in(opts.scale, opts.seed),
            ),
            (
                "orkut".to_string(),
                DatasetProfile::orkut().stand_in(opts.scale.saturating_sub(1), opts.seed),
            ),
        ]
    };

    let mut written: Vec<&str> = Vec::new();
    let mut mixed_rows = Vec::new();
    let mut sim_scale_rows = Vec::new();
    if opts.runs("hotpath") {
        for (name, g) in &datasets {
            eprintln!(
                "measuring {name}: |V|={} |E|={}",
                g.num_vertices(),
                g.num_edges()
            );
            measure(name, g, &opts, &mut rows);
            measure_mixed(name, g, &opts, &mut mixed_rows);
        }
        // Instance scaling on the lead dataset only: it measures the
        // modeled pipeline replication, not the graph.
        let (name, g) = &datasets[0];
        measure_sim_scaling(name, g, &opts, &mut sim_scale_rows);
    }

    // The saturation sweep runs on the lead dataset only: it measures the
    // scheduler, not the graph.
    let mut saturation_rows = Vec::new();
    if opts.runs("service") {
        let (name, g) = &datasets[0];
        measure_service_saturation(name, g, &opts, &mut saturation_rows);
    }

    // The program mix likewise: it measures control-flow overhead on the
    // hot path, not the graph.
    let mut program_rows = Vec::new();
    if opts.runs("program_mix") {
        let (name, g) = &datasets[0];
        measure_program_mix(name, g, &opts, &mut program_rows);
    }

    // The serving sweep likewise: it measures admission + scheduling
    // under load, not the graph.
    let mut serve_rows = Vec::new();
    if opts.runs("serve_latency") {
        let (name, g) = &datasets[0];
        measure_serve_latency(name, g, &opts, &mut serve_rows);
    }

    // The out-of-core sweep packs its own datasets to disk.
    let mut scale_rows = Vec::new();
    if opts.runs("graph_scale") {
        measure_graph_scale(&opts, &mut scale_rows);
    }

    // The partitioned-engine sweep builds its own graph too.
    let mut shard_rows = Vec::new();
    let mut compression_rows = Vec::new();
    if opts.runs("shard_scale") {
        measure_shard_scale(&opts, &mut shard_rows, &mut compression_rows);
    }

    if opts.runs("hotpath") {
        let baseline_rows = opts
            .baseline
            .as_ref()
            .map(|p| extract_rows(&std::fs::read_to_string(p).expect("read --baseline file")))
            .unwrap_or_default();

        let mut json = String::new();
        json.push_str("{\n");
        let _ = writeln!(json, "  \"bench\": \"hotpath\",");
        // host_cores contextualizes the thread-scaling rows: on a 1-core
        // CI runner every requested worker count resolves to one lane, so
        // readers (and the artifact diff) need the host size to interpret
        // the sweep.
        let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let _ = writeln!(
            json,
            "  \"config\": {{\"scale\": {}, \"seed\": {}, \"quick\": {}, \"host_cores\": {}}},",
            opts.scale, opts.seed, opts.quick, host_cores
        );
        if !baseline_rows.is_empty() {
            json.push_str("  \"baseline\": [\n");
            for (i, r) in baseline_rows.iter().enumerate() {
                let sep = if i + 1 < baseline_rows.len() { "," } else { "" };
                let _ = writeln!(json, "    {r}{sep}");
            }
            json.push_str("  ],\n");
        }
        json.push_str("  \"throughput\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let sep = if i + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(json, "    {}{sep}", r.to_json());
        }
        json.push_str("  ],\n");
        let gap_rows = node2vec_gaps(&rows);
        json.push_str("  \"node2vec_gap\": [\n");
        for (i, r) in gap_rows.iter().enumerate() {
            let sep = if i + 1 < gap_rows.len() { "," } else { "" };
            let _ = writeln!(json, "    {}{sep}", r.to_json());
        }
        json.push_str("  ],\n");
        json.push_str("  \"sim_instance_scaling\": [\n");
        for (i, r) in sim_scale_rows.iter().enumerate() {
            let sep = if i + 1 < sim_scale_rows.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(json, "    {}{sep}", r.to_json());
        }
        json.push_str("  ],\n");
        json.push_str("  \"mixed_engine\": [\n");
        for (i, r) in mixed_rows.iter().enumerate() {
            let sep = if i + 1 < mixed_rows.len() { "," } else { "" };
            let _ = writeln!(json, "    {}{sep}", r.to_json());
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&opts.out, &json).expect("write report");
        written.push(&opts.out);
    }

    // The service artifact: one file per concern, so the soak/saturation
    // history diffs independently of the hot-path numbers.
    if opts.runs("service") {
        let mut service_json = String::from("{\n");
        let _ = writeln!(service_json, "  \"bench\": \"service_saturation\",");
        let _ = writeln!(
            service_json,
            "  \"config\": {{\"scale\": {}, \"seed\": {}, \"quick\": {}, \
             \"backend\": \"cpu\", \"dataset\": \"{}\"}},",
            opts.scale, opts.seed, opts.quick, datasets[0].0
        );
        service_json.push_str("  \"saturation\": [\n");
        for (i, r) in saturation_rows.iter().enumerate() {
            let sep = if i + 1 < saturation_rows.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(service_json, "    {}{sep}", r.to_json());
        }
        service_json.push_str("  ]\n}\n");
        std::fs::write(&opts.out_service, &service_json).expect("write service report");
        written.push(&opts.out_service);
    }

    // The program artifact: the walk-program surface per backend.
    if opts.runs("program_mix") {
        let mut program_json = String::from("{\n");
        let _ = writeln!(program_json, "  \"bench\": \"program_mix\",");
        let _ = writeln!(
            program_json,
            "  \"config\": {{\"scale\": {}, \"seed\": {}, \"quick\": {}, \
             \"dataset\": \"{}\"}},",
            opts.scale, opts.seed, opts.quick, datasets[0].0
        );
        program_json.push_str("  \"programs\": [\n");
        for (i, r) in program_rows.iter().enumerate() {
            let sep = if i + 1 < program_rows.len() { "," } else { "" };
            let _ = writeln!(program_json, "    {}{sep}", r.to_json());
        }
        program_json.push_str("  ]\n}\n");
        std::fs::write(&opts.out_programs, &program_json).expect("write program report");
        written.push(&opts.out_programs);
    }

    // The serving artifact: the front-door offered-load sweep, one row
    // per level so the degradation shape diffs across history.
    if opts.runs("serve_latency") {
        let mut serve_json = String::from("{\n");
        let _ = writeln!(serve_json, "  \"bench\": \"serve_latency\",");
        let _ = writeln!(
            serve_json,
            "  \"config\": {{\"scale\": {}, \"seed\": {}, \"quick\": {}, \
             \"backend\": \"cpu\", \"dataset\": \"{}\", \"app\": \"uniform\"}},",
            opts.scale, opts.seed, opts.quick, datasets[0].0
        );
        serve_json.push_str("  \"sweep\": [\n");
        for (i, r) in serve_rows.iter().enumerate() {
            let sep = if i + 1 < serve_rows.len() { "," } else { "" };
            let _ = writeln!(serve_json, "    {}{sep}", r.to_json());
        }
        serve_json.push_str("  ]\n}\n");
        std::fs::write(&opts.out_serve, &serve_json).expect("write serve report");
        written.push(&opts.out_serve);
    }

    // The out-of-core artifact: the pack → mmap → walk sweep per scale,
    // plus the partitioned-engine (`shard_scale`) sections when selected.
    if opts.runs("graph_scale") || opts.runs("shard_scale") {
        let mut scale_json = String::from("{\n");
        let _ = writeln!(scale_json, "  \"bench\": \"graph_scale\",");
        let _ = writeln!(
            scale_json,
            "  \"config\": {{\"seed\": {}, \"quick\": {}, \"app\": \"StaticWeighted\", \
             \"engine\": \"cpu\", \"threads\": 0}},",
            opts.seed, opts.quick
        );
        scale_json.push_str("  \"scales\": [\n");
        for (i, r) in scale_rows.iter().enumerate() {
            let sep = if i + 1 < scale_rows.len() { "," } else { "" };
            let _ = writeln!(scale_json, "    {}{sep}", r.to_json());
        }
        scale_json.push_str("  ],\n");
        scale_json.push_str("  \"shards\": [\n");
        for (i, r) in shard_rows.iter().enumerate() {
            let sep = if i + 1 < shard_rows.len() { "," } else { "" };
            let _ = writeln!(scale_json, "    {}{sep}", r.to_json());
        }
        scale_json.push_str("  ],\n");
        scale_json.push_str("  \"compression\": [\n");
        for (i, r) in compression_rows.iter().enumerate() {
            let sep = if i + 1 < compression_rows.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(scale_json, "    {}{sep}", r.to_json());
        }
        scale_json.push_str("  ]\n}\n");
        std::fs::write(&opts.out_scale, &scale_json).expect("write scale report");
        written.push(&opts.out_scale);
    }

    if opts.runs("hotpath") {
        println!(
            "{:<10} {:<15} {:<13} {:>8} {:>12}",
            "dataset", "app", "engine", "threads", "steps/s"
        );
        for r in &rows {
            println!(
                "{:<10} {:<15} {:<13} {:>8} {:>12}",
                r.dataset,
                r.app,
                r.engine,
                r.threads,
                lightrw_bench::fmt_rate(r.steps_per_sec())
            );
        }
        println!();
        println!("{:<10} {:<16} {:>8}", "dataset", "node2vec gap", "uni/n2v");
        for r in &node2vec_gaps(&rows) {
            println!("{:<10} {:<16} {:>7.2}x", r.dataset, r.sampler, r.gap());
        }
        println!();
        println!("{:<10} {:>9} {:>12}", "sim scale", "instances", "steps/s*");
        for r in &sim_scale_rows {
            println!(
                "{:<10} {:>9} {:>12}",
                r.dataset,
                r.instances,
                lightrw_bench::fmt_rate(r.steps_per_sec())
            );
        }
        println!("(* model time, not host wall clock)");
        println!();
        println!(
            "{:<38} {:>7} {:>9} {:>12}",
            "mixed-engine (interleaved sessions)", "batches", "steps", "steps/s"
        );
        for r in &mixed_rows {
            println!(
                "{:<38} {:>7} {:>9} {:>12}",
                r.engine,
                r.batches,
                r.steps,
                lightrw_bench::fmt_rate(r.steps_per_sec())
            );
        }
        println!();
    }
    if opts.runs("service") {
        println!(
            "{:<28} {:>6} {:>12} {:>11} {:>11}",
            "service saturation (cpu)", "jobs", "steps/s", "p50 ms", "p99 ms"
        );
        for r in &saturation_rows {
            println!(
                "{:<28} {:>6} {:>12} {:>11.3} {:>11.3}",
                format!("{} tenant(s)", r.tenants),
                r.jobs,
                lightrw_bench::fmt_rate(r.steps_per_sec()),
                r.p50_ms,
                r.p99_ms
            );
        }
        println!();
    }
    if opts.runs("program_mix") {
        println!(
            "{:<48} {:<13} {:>9} {:>7} {:>12}",
            "program mix", "engine", "steps", "paths", "steps/s"
        );
        for r in &program_rows {
            println!(
                "{:<48} {:<13} {:>9} {:>7} {:>12}",
                r.program,
                r.engine,
                r.steps,
                r.paths,
                lightrw_bench::fmt_rate(r.steps_per_sec())
            );
        }
    }
    if opts.runs("graph_scale") {
        println!(
            "{:<10} {:<18} {:>10} {:>11} {:>12} {:>13} {:>9}",
            "out-of-core",
            "sampler",
            "file MB",
            "pack RSS MB",
            "steps/s",
            "walk RSS MB",
            "RSS/file"
        );
        for r in &scale_rows {
            println!(
                "{:<10} {:<18} {:>10} {:>11} {:>12} {:>13} {:>8.0}%",
                r.dataset,
                r.sampler,
                r.file_bytes >> 20,
                r.pack_peak_rss >> 20,
                lightrw_bench::fmt_rate(r.steps_per_sec()),
                r.walk_peak_rss >> 20,
                r.rss_over_file() * 100.0
            );
        }
        println!();
    }
    if opts.runs("shard_scale") {
        println!(
            "{:<10} {:>6} {:>12} {:>10} {:>10} {:>12} {:>12}",
            "sharded", "shards", "steps/s", "cross exp", "cross obs", "xfer bytes", "xfer s"
        );
        for r in &shard_rows {
            let label = if r.shards == 0 {
                "unsharded".to_string()
            } else {
                format!("{}", r.shards)
            };
            println!(
                "{:<10} {:>6} {:>12} {:>10.4} {:>10.4} {:>12} {:>12.6}",
                r.dataset,
                label,
                lightrw_bench::fmt_rate(r.steps_per_sec()),
                r.crossing_expected,
                r.crossing_measured(),
                r.transfer_bytes,
                r.transfer_s
            );
        }
        for c in &compression_rows {
            println!(
                "{:<10} varint column: {} -> {} bytes ({:.1}% of plain)",
                c.dataset,
                c.plain_bytes,
                c.compressed_bytes,
                c.ratio() * 100.0
            );
        }
        println!();
    }
    eprintln!("wrote {}", written.join(" and "));
}
