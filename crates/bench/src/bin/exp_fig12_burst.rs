//! Binary wrapper for the `fig12_burst` experiment (see DESIGN.md §3).

fn main() {
    let opts = lightrw_bench::Opts::from_args();
    print!("{}", lightrw_bench::experiments::fig12_burst::run(&opts));
}
