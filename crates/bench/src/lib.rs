//! # lightrw-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation (§6), each
//! printing the same rows/series the paper reports (see DESIGN.md §3 for
//! the full index). Every experiment is a library function so binaries,
//! `exp_all` and the integration tests share one code path:
//!
//! ```text
//! cargo run --release -p lightrw-bench --bin exp_fig14_speedup -- --scale 14
//! cargo run --release -p lightrw-bench --bin exp_all            # everything
//! ```
//!
//! Default scales are reduced (stand-ins ≤ 2^14 vertices) so the suite
//! finishes in minutes; `--scale N` raises fidelity, `--quick` lowers it
//! for CI. Results are deterministic per seed.

pub mod datasets;
pub mod experiments;
pub mod rss;
pub mod table;

/// Common experiment options parsed from `std::env::args`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Opts {
    /// log2 of the stand-in vertex count.
    pub scale: u32,
    /// Base RNG seed.
    pub seed: u64,
    /// Reduced workloads for CI/integration tests.
    pub quick: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            scale: 12,
            seed: 42,
            quick: false,
        }
    }
}

impl Opts {
    /// Quick preset used by integration tests.
    pub fn quick() -> Self {
        Self {
            scale: 9,
            quick: true,
            ..Self::default()
        }
    }

    /// Parse `--scale N`, `--seed N`, `--quick`, `--full` from CLI args.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    opts.scale = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--scale needs an integer"));
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--seed needs an integer"));
                }
                "--quick" => opts.quick = true,
                "--full" => opts.scale = opts.scale.max(16),
                "--help" | "-h" => {
                    eprintln!("options: --scale N (default 12) --seed N --quick --full");
                    std::process::exit(0);
                }
                other => die::<()>(&format!("unknown option {other}")),
            }
            i += 1;
        }
        assert!(opts.scale >= 6 && opts.scale <= 22, "scale out of range");
        opts
    }
}

fn die<T>(msg: &str) -> T {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

/// Format seconds human-readably.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Format a rate in engineering notation.
pub fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2} G/s", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2} M/s", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2} K/s", r / 1e3)
    } else {
        format!("{r:.1} /s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = Opts::default();
        assert_eq!(o.scale, 12);
        assert!(!o.quick);
        let q = Opts::quick();
        assert!(q.quick);
        assert!(q.scale < o.scale);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0025), "2.50 ms");
        assert_eq!(fmt_secs(25e-6), "25.0 µs");
        assert_eq!(fmt_rate(2.5e9), "2.50 G/s");
        assert_eq!(fmt_rate(2.5e6), "2.50 M/s");
        assert_eq!(fmt_rate(2500.0), "2.50 K/s");
        assert_eq!(fmt_rate(12.0), "12.0 /s");
    }
}
