//! Criterion bench: graph generation and CSR construction throughput.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lightrw::graph::generators::{rmat, rmat_edges, RMAT_A, RMAT_B, RMAT_C};

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("rmat_edges");
    for scale in [12u32, 14] {
        let edges = 8u64 << scale;
        group.throughput(Throughput::Elements(edges));
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &s| {
            b.iter(|| rmat_edges(s, 8, (RMAT_A, RMAT_B, RMAT_C), 7).len());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("csr_build");
    for scale in [12u32, 14] {
        group.throughput(Throughput::Elements(8u64 << scale));
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &s| {
            b.iter(|| rmat(s, 8, 7).num_edges());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("neighbor_scan");
    let g = rmat(14, 8, 7);
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    group.bench_function("sum_all_adjacency", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..g.num_vertices() as u32 {
                for &n in g.neighbors(v) {
                    acc = acc.wrapping_add(n as u64);
                }
            }
            acc
        });
    });
    group.finish();
}

fn tuned() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench_graph
}
criterion_main!(benches);
