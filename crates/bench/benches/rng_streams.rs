//! Criterion bench: multi-stream RNG row generation (the ThundeRiNG
//! model) vs a scalar SplitMix64 — state sharing should make per-number
//! cost drop as lanes widen.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lightrw::rng::{Rng, SplitMix64, StreamBank};

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_bank_row");
    for k in [1usize, 16, 64] {
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut bank = StreamBank::new(5, k);
            let mut row = vec![0u32; k];
            b.iter(|| {
                bank.next_row(&mut row);
                row[0]
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scalar");
    group.throughput(Throughput::Elements(1));
    group.bench_function("splitmix64", |b| {
        let mut rng = SplitMix64::new(5);
        b.iter(|| rng.next_u64());
    });
    group.finish();
}

fn tuned() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench_rng
}
criterion_main!(benches);
