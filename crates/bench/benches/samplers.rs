//! Criterion bench: per-step weighted sampling methods head to head — the
//! software cost of the "initialization + generation" barrier (§3.2's
//! claim that WRS-on-CPU loses to table samplers, which Fig. 14's
//! "ThunderRW w/PWRS" bars confirm at system level).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lightrw::prelude::SamplerKind;
use lightrw::rng::{Rng, SplitMix64};
use lightrw::walker::AnySampler;

fn bench_samplers(c: &mut Criterion) {
    // A typical social-graph step: a few dozen candidates.
    for degree in [16usize, 256] {
        let mut rng = SplitMix64::new(3);
        let weights: Vec<u32> = (0..degree).map(|_| 1 + (rng.next_u32() >> 24)).collect();
        let mut group = c.benchmark_group(format!("sample_one_of_{degree}"));
        group.throughput(Throughput::Elements(degree as u64));
        for kind in [
            SamplerKind::InverseTransform,
            SamplerKind::Alias,
            SamplerKind::SequentialWrs,
            SamplerKind::ParallelWrs { k: 16 },
        ] {
            group.bench_with_input(
                BenchmarkId::from_parameter(kind.name()),
                &kind,
                |b, &kind| {
                    let mut sampler = AnySampler::new(kind, 9);
                    b.iter(|| sampler.select_index(&weights));
                },
            );
        }
        group.finish();
    }
}

fn tuned() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench_samplers
}
criterion_main!(benches);
