//! Criterion bench: accelerator-model simulation speed (simulated walk
//! steps per second of host time) — what makes the full experiment suite
//! tractable — plus the Fig. 13 ablation configurations as performance
//! sanity anchors.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lightrw::graph::generators::rmat_dataset;
use lightrw::prelude::*;

fn bench_hwsim(c: &mut Criterion) {
    let g = rmat_dataset(12, 11);
    let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
    let qs = QuerySet::n_queries(&g, 1024, 5, 3);

    let mut group = c.benchmark_group("hwsim_run");
    group.throughput(Throughput::Elements(qs.total_steps()));
    for (name, cfg) in [
        ("all_on", LightRwConfig::single_instance()),
        (
            "no_wrs_pipeline",
            LightRwConfig::single_instance().without_wrs_pipelining(),
        ),
        (
            "no_dynamic_burst",
            LightRwConfig::single_instance().without_dynamic_burst(),
        ),
        ("no_cache", LightRwConfig::single_instance().without_cache()),
        ("four_instances", LightRwConfig::default()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| LightRwSim::new(&g, &mp, *cfg).run(&qs).cycles);
        });
    }
    group.finish();
}

fn tuned() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench_hwsim
}
criterion_main!(benches);
