//! Criterion + ablation bench: burst command planning across (S1, S2)
//! pairs — extends Fig. 12's S2 = 1 slice to the full Pareto surface
//! (another DESIGN.md ablation: is a wider short burst ever worth it?).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lightrw::graph::generators::rmat_dataset;
use lightrw::memsim::bandwidth::expected_valid_ratio_dynamic;
use lightrw::memsim::{BurstConfig, BurstPlan, DramConfig};

fn bench_burst(c: &mut Criterion) {
    let dram = DramConfig::default();
    let mut group = c.benchmark_group("burst_plan");
    let sizes: Vec<u64> = (0..4096).map(|i| (i * 37) % 20_000).collect();
    group.throughput(Throughput::Elements(sizes.len() as u64));
    for cfg in [
        BurstConfig::short_only(),
        BurstConfig::with_long(8),
        BurstConfig::with_long(32),
        BurstConfig {
            short_beats: 4,
            long_beats: 32,
        },
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(cfg.name()), &cfg, |b, &cfg| {
            b.iter(|| {
                let mut beats = 0u64;
                for &s in &sizes {
                    beats += BurstPlan::plan(s, cfg, &dram).beats();
                }
                beats
            });
        });
    }
    group.finish();

    // Not a timing bench: print the (S1, S2) valid-ratio Pareto once, so
    // `cargo bench` output doubles as the ablation table.
    let g = rmat_dataset(12, 3);
    println!("\n(S1,S2) expected valid-data ratio on rmat-12 (visit-weighted):");
    for s2 in [1u64, 2, 4] {
        for s1 in [0u64, 8, 32, 64] {
            let cfg = BurstConfig {
                short_beats: s2,
                long_beats: s1,
            };
            println!(
                "  {:>8}: {:.3}",
                cfg.name(),
                expected_valid_ratio_dynamic(&g, cfg, &dram)
            );
        }
    }
}

fn tuned() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(15)
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench_burst
}
criterion_main!(benches);
