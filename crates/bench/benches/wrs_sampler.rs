//! Criterion bench: the parallel WRS sampler across parallelism degrees
//! (the software analogue of Fig. 10a — higher k should raise items/s
//! until per-batch overhead dominates).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lightrw::rng::{Rng, SplitMix64};
use lightrw::sampling::ParallelWrs;

fn bench_wrs(c: &mut Criterion) {
    let n = 1 << 14;
    let mut rng = SplitMix64::new(1);
    let weights: Vec<u32> = (0..n).map(|_| 1 + (rng.next_u32() >> 24)).collect();
    let items: Vec<u32> = (0..n as u32).collect();

    let mut group = c.benchmark_group("parallel_wrs_select");
    group.throughput(Throughput::Elements(n as u64));
    for k in [1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut wrs = ParallelWrs::new(7, k);
            b.iter(|| wrs.select(&items, &weights));
        });
    }
    group.finish();

    // Short streams: the per-step regime of a real walk (degree ~16).
    let mut group = c.benchmark_group("parallel_wrs_degree16");
    group.throughput(Throughput::Elements(16));
    for k in [4usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut wrs = ParallelWrs::new(7, k);
            b.iter(|| wrs.select(&items[..16], &weights[..16]));
        });
    }
    group.finish();
}

fn tuned() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench_wrs
}
criterion_main!(benches);
