//! Criterion bench: the ThunderRW-like CPU engine — sampler choice and
//! thread scaling (the measured side of Fig. 14).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lightrw::graph::generators::rmat_dataset;
use lightrw::prelude::*;

fn bench_baseline(c: &mut Criterion) {
    let g = rmat_dataset(12, 13);
    let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
    let qs = QuerySet::n_queries(&g, 1024, 5, 3);

    let mut group = c.benchmark_group("cpu_engine_sampler");
    group.throughput(Throughput::Elements(qs.total_steps()));
    for kind in [
        SamplerKind::InverseTransform,
        SamplerKind::Alias,
        SamplerKind::SequentialWrs,
        SamplerKind::ParallelWrs { k: 16 },
    ] {
        let cfg = BaselineConfig {
            threads: 1,
            sampler: kind,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &cfg, |b, cfg| {
            let engine = CpuEngine::new(&g, &mp, *cfg);
            b.iter(|| engine.run(&qs).1.steps);
        });
    }
    group.finish();

    let mut group = c.benchmark_group("cpu_engine_threads");
    group.throughput(Throughput::Elements(qs.total_steps()));
    for threads in [1usize, 4] {
        let cfg = BaselineConfig {
            threads,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &cfg, |b, cfg| {
            let engine = CpuEngine::new(&g, &mp, *cfg);
            b.iter(|| engine.run(&qs).1.steps);
        });
    }
    group.finish();
}

fn tuned() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench_baseline
}
criterion_main!(benches);
