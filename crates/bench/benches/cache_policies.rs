//! Criterion + ablation bench: row-cache policies under skewed access.
//!
//! Extends Fig. 11 beyond the paper: besides DAC vs DMC, the
//! set-associative LRU variant is measured, and the access stream's skew
//! is varied — a design-choice ablation DESIGN.md calls out (recency
//! policies fail precisely because walk accesses have no temporal
//! locality).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lightrw::memsim::{CachePolicy, RowCache};
use lightrw::rng::{Rng, SplitMix64};

/// A degree-skewed access stream: vertex v has "degree" max(1, M/(v+1))
/// (Zipf-like) and is accessed proportionally to it.
fn zipf_stream(vertices: u32, accesses: usize, seed: u64) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    (0..accesses)
        .map(|_| {
            // Inverse-power sampling: v ~ 1/(v+1) density.
            let u = rng.next_f64();
            let v = ((vertices as f64).powf(u) - 1.0) as u32;
            v.min(vertices - 1)
        })
        .collect()
}

fn degree_of(v: u32) -> u32 {
    (1_000_000 / (v as u64 + 1)).max(1) as u32
}

fn bench_cache(c: &mut Criterion) {
    let stream = zipf_stream(1 << 16, 1 << 15, 3);
    let mut group = c.benchmark_group("row_cache_lookup");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for (name, mk) in [
        ("dac_direct", CachePolicy::DegreeAware),
        ("dmc_direct", CachePolicy::AlwaysReplace),
        ("uncached", CachePolicy::None),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mk, |b, &policy| {
            b.iter(|| {
                let mut cache = RowCache::direct_mapped(policy, 12);
                let mut hits = 0u64;
                for &v in &stream {
                    let (o, _, _) = cache.lookup(v, || (v as u64 * 8, degree_of(v)));
                    if o == lightrw::memsim::CacheOutcome::Hit {
                        hits += 1;
                    }
                }
                hits
            });
        });
    }
    // 4-way set-associative variants (extension ablation).
    for (name, policy) in [
        ("dac_4way", CachePolicy::DegreeAware),
        ("lru_4way", CachePolicy::Lru),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            b.iter(|| {
                let mut cache = RowCache::set_associative(policy, 10, 4);
                let mut hits = 0u64;
                for &v in &stream {
                    let (o, _, _) = cache.lookup(v, || (v as u64 * 8, degree_of(v)));
                    if o == lightrw::memsim::CacheOutcome::Hit {
                        hits += 1;
                    }
                }
                hits
            });
        });
    }
    group.finish();
}

fn tuned() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(15)
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench_cache
}
criterion_main!(benches);
