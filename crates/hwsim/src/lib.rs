//! # lightrw-hwsim — the LightRW accelerator model
//!
//! An executable, cycle-approximate model of the hardware architecture in
//! paper Fig. 3. This is the substitution for the Vitis HLS bitstream
//! (DESIGN.md §1): it runs the *real* algorithms — parallel WRS selection
//! with the integer acceptance test, degree-aware caching, dynamic burst
//! planning — while charging model cycles for every stage and DRAM
//! transaction, so one run yields both the sampled walks and the timing
//! the paper's figures report.
//!
//! ## Timing model
//!
//! Each accelerator instance is a tandem pipeline whose stages hold a
//! `next_free` cycle (hardware initiation-interval occupancy), plus one
//! [`lightrw_memsim::DramChannel`] shared by the Neighbor Info Loader and the Neighbor
//! Loader (they arbitrate over the same AXI port in hardware):
//!
//! | Fig. 3 module | model |
//! |---|---|
//! | Query Controller | 1-cycle dispatch occupancy; re-queues a query when its previous step's sample lands |
//! | Neighbor Info Loader + degree-aware cache | hit: 1 cycle; miss: DRAM single-beat access latency |
//! | Neighbor Loader + dynamic burst engine | `⌊c/S1⌋` long + `⌈rem/S2⌉` short bursts on the channel |
//! | Weight Updater + WRS Sampler | fully pipelined, k items/cycle → `⌈deg/k⌉` cycles, overlapped with loading |
//!
//! Queries move through a ready-heap discrete-event loop: many queries are
//! in flight at once, so the bottleneck stage (usually the DRAM channel)
//! sets throughput exactly as it does on the board.
//!
//! The Fig. 13 ablations are configuration flags: `pipelined_sampling =
//! false` re-introduces the CPU-style barriers and O(deg) intermediate
//! tables; `cache_policy = None` and `burst = short_only()` disable DAC
//! and DYB respectively.
//!
//! Functionally, each instance feeds its k-lane WRS through the shared
//! fused hot path (`lightrw_walker::HotStepper`, DESIGN.md §5): weights
//! stream lane by lane into the sampler with no per-step allocation —
//! the software feeder works the way the hardware datapath does. Timing
//! is computed from degrees alone and is unaffected by which functional
//! strategy the stepper picks.
//!
//! Walk control flow comes from the query set's
//! [`lightrw_walker::program::WalkProgram`] (DESIGN.md §8): every heap
//! pop runs one `step_attempt` of the shared program state machine, and
//! the timing model charges what the attempt actually did — a restart
//! draw never leaves the Query Controller (1-cycle requeue, no DRAM), a
//! target hit only pays the output write, while sampled moves and
//! dead-end probes pay the full load + sample pipeline. Fixed-length
//! programs are bit-identical to the pre-program model, cycles and
//! latencies included.
//!
//! ## Streaming sessions
//!
//! Both [`Instance`] and [`LightRwSim`] implement the engine-agnostic
//! [`lightrw_walker::WalkEngine`] trait (DESIGN.md §6): all mutable run
//! state lives in per-session objects ([`instance::InstanceSession`],
//! [`multi::SimSession`]), batch boundaries fall at event-heap
//! granularity (one budget unit = one heap pop = one step of one
//! in-flight query), finished paths are emitted incrementally in
//! query-id order, and `model_seconds` exposes the simulated clock so
//! engine-agnostic hosts can still reason about board time.

pub mod config;
pub mod instance;
pub mod multi;
pub mod report;

pub use config::LightRwConfig;
pub use instance::{Instance, InstanceSession};
pub use multi::{LightRwSim, SimSession};
pub use report::{InstanceReport, SimReport};
