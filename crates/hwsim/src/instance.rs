//! One accelerator instance: the Fig. 3 datapath bound to one DRAM channel.
//!
//! [`Instance`] is the immutable deployment spec (graph, app, config,
//! seed); all run state — DRAM channel, row cache, sampler bank, the
//! discrete-event ready heap — lives in [`InstanceSession`], created per
//! query set. The session exposes the engine-agnostic batching contract
//! of DESIGN.md §6 at **event-heap granularity**: one `advance` budget
//! unit is one heap pop, i.e. one walk step of one in-flight query, so a
//! host can interleave the simulated kernel with other work at exactly
//! the resolution the hardware's Query Controller re-queues walks.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lightrw_graph::{Graph, VertexId, COL_ENTRY_BYTES, ROW_ENTRY_BYTES};
use lightrw_memsim::{BurstPlan, CacheOutcome, DramChannel, RequestKind, RowCache};
use lightrw_walker::engine::{BatchProgress, WalkEngine, WalkSession, WalkSink};
use lightrw_walker::program::{StepOutcome, WalkProgram, WalkState};
use lightrw_walker::{HotStepper, Query, QuerySet, SamplerKind, WalkApp, WalkResults};

use crate::config::LightRwConfig;
use crate::report::InstanceReport;

/// Timing outcome of one walk step.
struct StepTiming {
    /// Cycle when the Query Controller dispatched the step.
    dispatched: u64,
    /// Cycle when the sampled vertex is available for the next step.
    done: u64,
}

/// One LightRW instance (paper Fig. 9 instantiates four, one per channel).
pub struct Instance<'g> {
    graph: &'g Graph,
    app: &'g dyn WalkApp,
    cfg: LightRwConfig,
    seed: u64,
}

impl<'g> Instance<'g> {
    /// Build an instance. `seed` must differ across instances so their WRS
    /// banks are independent.
    pub fn new(graph: &'g Graph, app: &'g dyn WalkApp, cfg: LightRwConfig, seed: u64) -> Self {
        Self {
            graph,
            app,
            cfg: cfg.validated(),
            seed,
        }
    }

    /// Start a session over `queries` (concrete type; the [`WalkEngine`]
    /// impl boxes the same thing). Sessions are independent — each gets
    /// its own DRAM channel, cache and sampler bank — so two sessions may
    /// interleave on one instance spec.
    pub fn session(&self, queries: &QuerySet) -> InstanceSession<'g> {
        InstanceSession::new(self.graph, self.app, self.cfg, self.seed, queries)
    }

    /// Run a query set to completion on this instance.
    pub fn run(&self, queries: &QuerySet) -> (WalkResults, InstanceReport) {
        let mut session = self.session(queries);
        let mut results = WalkResults::with_capacity(
            queries.len(),
            queries
                .queries()
                .first()
                .map_or(1, |q| q.length as usize + 1),
        );
        while !session.finished() {
            session.advance(u64::MAX, &mut results);
        }
        let report = session.into_report();
        (results, report)
    }
}

impl WalkEngine for Instance<'_> {
    fn label(&self) -> String {
        format!("sim-instance(k={})", self.cfg.k)
    }

    fn start_session<'s>(&'s self, queries: &QuerySet) -> Box<dyn WalkSession + 's> {
        Box::new(self.session(queries))
    }
}

/// The discrete-event execution of one query set on one instance.
pub struct InstanceSession<'g> {
    graph: &'g Graph,
    app: &'g dyn WalkApp,
    cfg: LightRwConfig,
    dram: DramChannel,
    cache: RowCache,
    /// The functional Weight Updater + WRS Sampler: one fused streaming
    /// pass per step through the shared hot path (DESIGN.md §5), with the
    /// instance's k-lane parallel WRS underneath.
    stepper: HotStepper,
    /// Query Controller occupancy (1 dispatch per cycle).
    dispatch_free: u64,
    /// WRS sampler occupancy (k items per cycle).
    sampler_free: u64,
    sampler_batches: u64,

    // Per-query walk state.
    program: WalkProgram,
    queries: Vec<Query>,
    cur: Vec<VertexId>,
    prev: Vec<Option<VertexId>>,
    /// Step budget consumed (moves + teleports).
    taken: Vec<u32>,
    /// Step index within the current restart segment.
    seg: Vec<u32>,
    paths: Vec<Vec<VertexId>>,
    done: Vec<bool>,
    first_dispatch: Vec<u64>,
    completion: Vec<u64>,

    /// Ready heap: (cycle, local index) min-ordered; the index breaks
    /// ties deterministically. The Query Scheduler admits at most
    /// `max_inflight` queries into the pipeline; the rest queue at the
    /// input and enter as slots retire (hardware FIFO depth) — this is
    /// what keeps per-query latency bounded and consistent (Fig. 15).
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Next not-yet-admitted query index.
    next_pending: usize,
    /// Next query id to emit (paths emit in id order).
    emit_next: usize,
    steps_executed: u64,
    /// Latest model cycle any executed event reached — the session's
    /// clock, valid mid-stream (unlike completion times, which only
    /// exist for retired queries).
    horizon: u64,
}

impl<'g> InstanceSession<'g> {
    fn new(
        graph: &'g Graph,
        app: &'g dyn WalkApp,
        cfg: LightRwConfig,
        seed: u64,
        queries: &QuerySet,
    ) -> Self {
        // The modeled hardware samples with parallel WRS at width k; a
        // cfg.sampler override swaps the sampling function only — the
        // cycle model below still prices the WRS datapath.
        let kind = cfg.sampler.unwrap_or(SamplerKind::ParallelWrs { k: cfg.k });
        let mut stepper = HotStepper::new(app, kind, seed);
        stepper.reserve(graph.max_degree() as usize);
        let qs = queries.queries();
        let n = qs.len();
        let max_inflight = cfg.max_inflight;
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::with_capacity(max_inflight);
        let next_pending = n.min(max_inflight);
        for i in 0..next_pending {
            heap.push(Reverse((0, i as u32)));
        }
        Self {
            graph,
            app,
            cfg,
            dram: DramChannel::new(cfg.dram),
            cache: RowCache::direct_mapped(cfg.cache_policy, cfg.cache_index_bits),
            stepper,
            dispatch_free: 0,
            sampler_free: 0,
            sampler_batches: 0,
            program: queries.program().clone(),
            queries: qs.to_vec(),
            cur: qs.iter().map(|q| q.start).collect(),
            prev: vec![None; n],
            taken: vec![0; n],
            seg: vec![0; n],
            paths: qs.iter().map(|q| vec![q.start]).collect(),
            done: vec![false; n],
            first_dispatch: vec![0; n],
            completion: vec![0; n],
            heap,
            next_pending,
            emit_next: 0,
            steps_executed: 0,
            horizon: 0,
        }
    }

    /// Look up a vertex's row entry through the cache, charging DRAM on a
    /// miss. Returns the cycle at which `{addr, degree}` is available.
    fn row_info(&mut self, v: VertexId, issue: u64) -> u64 {
        let g = self.graph;
        let (outcome, _addr, _deg) = self.cache.lookup(v, || (g.row_entry_addr(v), g.degree(v)));
        match outcome {
            CacheOutcome::Hit => issue + 1,
            CacheOutcome::Miss => {
                let acc = self.dram.request(issue, 1, RequestKind::Start);
                self.dram.note_useful_bytes(ROW_ENTRY_BYTES);
                acc.data_ready
            }
        }
    }

    /// Stream a neighbor list through the dynamic burst engine. Returns
    /// (first-data cycle, last-data cycle).
    fn load_neighbors(&mut self, bytes: u64, issue: u64) -> (u64, u64) {
        if bytes == 0 {
            return (issue, issue);
        }
        let plan = BurstPlan::plan(bytes, self.cfg.burst, self.dram.config());
        let mut first = u64::MAX;
        let mut last = issue;
        for (beats, kind) in plan.commands() {
            let acc = self.dram.request(issue, beats, kind);
            first = first.min(acc.data_ready);
            last = last.max(acc.data_ready);
        }
        self.dram.note_useful_bytes(bytes);
        (first, last)
    }

    /// Model time of one step attempt, charged according to what the
    /// attempt actually did. The functional decision has already been
    /// made ([`WalkProgram::step_attempt`]); `cur`/`prev` are the
    /// *pre-attempt* position.
    fn step_timing(
        &mut self,
        ready: u64,
        cur: VertexId,
        prev: Option<VertexId>,
        outcome: &StepOutcome,
    ) -> StepTiming {
        // --- Query Controller: one dispatch per cycle, whatever the
        // control decision.
        let t1 = ready.max(self.dispatch_free);
        self.dispatch_free = t1 + 1;
        match outcome {
            // A restart draw never leaves the Query Controller: the walk
            // re-queues at its start vertex one cycle later, with no
            // memory traffic.
            StepOutcome::Teleported {
                after_dead_end: false,
                ..
            } => StepTiming {
                dispatched: t1,
                done: t1 + 1,
            },
            // A target hit at the start vertex only writes the result out
            // (the target probe is query metadata, not a graph access).
            StepOutcome::TargetAtStart => StepTiming {
                dispatched: t1,
                done: t1 + self.cfg.output_latency,
            },
            // Everything else ran the load + sample pipeline: sampled
            // moves, truncating dead ends, and dead-end restarts (which
            // probed the neighbor list before teleporting).
            _ => self.memory_timing(t1, cur, prev),
        }
    }

    /// The Fig. 3 datapath timing: Neighbor Info Loader, Neighbor Loader
    /// bursts and WRS sampler occupancy for one step from `cur`.
    fn memory_timing(&mut self, t1: u64, cur: VertexId, prev: Option<VertexId>) -> StepTiming {
        let g = self.graph;
        let cfg = self.cfg;

        // --- Neighbor Info Loader (+ degree-aware cache).
        // Only the freshly sampled vertex needs a row_index fetch; the
        // previous vertex's {address, degree} was fetched when it was
        // current, and rides along in the query metadata (the Query
        // Controller "prepares query metadata" per Fig. 3).
        let second_order = self.app.second_order() && prev.is_some();
        let info_ready = self.row_info(cur, t1 + 1);

        let deg = g.degree(cur) as u64;
        if deg == 0 {
            // Dead end before any loading.
            return StepTiming {
                dispatched: t1,
                done: info_ready + cfg.output_latency,
            };
        }

        // --- Neighbor Loader (+ dynamic burst engine).
        let (first_data, mut last_data) = self.load_neighbors(deg * COL_ENTRY_BYTES, info_ready);
        let mut items_total = deg;
        if second_order {
            let deg_prev = g.degree(prev.unwrap()) as u64;
            if deg_prev > 0 {
                let (_, prev_last) = self.load_neighbors(deg_prev * COL_ENTRY_BYTES, info_ready);
                last_data = last_data.max(prev_last);
                // The Weight Updater merge-joins both sorted streams at k
                // elements/cycle total.
                items_total += deg_prev;
            }
        }

        // --- Timing of the sampling path (the functional selection
        // already streamed through the shared hot path).
        let batches = items_total.div_ceil(cfg.k as u64);
        self.sampler_batches += batches;
        let done = if cfg.pipelined_sampling {
            // Fine-grained pipeline: sampling overlaps loading; the step
            // completes when both the last beat has landed and the sampler
            // has had `batches` issue slots.
            let sampler_start = first_data.max(self.sampler_free);
            self.sampler_free = sampler_start + batches;
            last_data.max(sampler_start + batches) + cfg.output_latency
        } else {
            // Staged flow (ablation): weights are materialized to DRAM,
            // the sampler re-reads them, builds its O(deg) table, then
            // draws — the Algorithm 2.1 structure with its 2·|N(v)|
            // intermediate accesses (paper Inefficiency 1).
            let weight_bytes = deg * 4;
            let (_, write_done) = self.load_neighbors(weight_bytes, last_data);
            let (_, read_done) = self.load_neighbors(weight_bytes, write_done);
            let init = deg; // O(n) table initialization
            let gen = 64 - deg.leading_zeros() as u64; // O(log n) draw
            read_done + init + gen + cfg.output_latency
        };

        StepTiming {
            dispatched: t1,
            done,
        }
    }

    /// Pop and execute one ready event: one program step attempt of one
    /// in-flight query, functionally (Weight Updater + WRS through the
    /// shared hot path, control decisions included) and in model time.
    /// Returns whether a step executed (false only on a halting probe —
    /// truncating dead end or target-at-start).
    fn pop_event(&mut self) -> bool {
        let Some(Reverse((ready, i))) = self.heap.pop() else {
            return false;
        };
        let i = i as usize;
        let q = self.queries[i];
        let first_attempt = self.taken[i] == 0;
        let (cur, prev) = (self.cur[i], self.prev[i]);
        let mut st = WalkState {
            cur,
            prev,
            taken: self.taken[i],
            seg: self.seg[i],
        };
        // Functional decision first (control draw + fused sampling pass);
        // the memory model then charges exactly what happened.
        let outcome =
            self.program
                .step_attempt(self.graph, self.app, &mut self.stepper, &q, &mut st);
        self.cur[i] = st.cur;
        self.prev[i] = st.prev;
        self.taken[i] = st.taken;
        self.seg[i] = st.seg;
        let timing = self.step_timing(ready, cur, prev, &outcome);
        self.horizon = self.horizon.max(timing.done);
        if first_attempt {
            self.first_dispatch[i] = timing.dispatched;
        }
        let (appended, walk_done) = match outcome {
            StepOutcome::Moved { next, done } => (Some(next), done),
            StepOutcome::Teleported { done, .. } => (Some(q.start), done),
            StepOutcome::DeadEnd | StepOutcome::TargetAtStart => (None, true),
        };
        let stepped = appended.is_some();
        if let Some(v) = appended {
            self.steps_executed += 1;
            self.paths[i].push(v);
        }
        if stepped && !walk_done {
            self.heap.push(Reverse((timing.done, i as u32)));
        } else {
            self.completion[i] = timing.done;
            self.done[i] = true;
            // Retire this query's slot; admit the next pending one.
            if self.next_pending < self.queries.len() {
                self.heap
                    .push(Reverse((timing.done, self.next_pending as u32)));
                self.next_pending += 1;
            }
        }
        stepped
    }

    /// Emit completed paths in id order, releasing their buffers.
    fn drain_ready(&mut self, sink: &mut dyn WalkSink) -> usize {
        let mut emitted = 0;
        while self.emit_next < self.queries.len() && self.done[self.emit_next] {
            let path = std::mem::take(&mut self.paths[self.emit_next]);
            sink.emit(self.emit_next as u32, &path);
            self.emit_next += 1;
            emitted += 1;
        }
        emitted
    }

    /// Row-cache statistics so far.
    pub fn cache_stats(&self) -> lightrw_memsim::CacheStats {
        *self.cache.stats()
    }

    /// Wall cycles so far: the latest model cycle any executed event
    /// reached, whether or not its query has retired. For a drained
    /// session this equals the maximum completion time (each query's
    /// event times increase monotonically, so the last event of some
    /// query sets the horizon).
    pub fn cycles(&self) -> u64 {
        self.horizon
    }

    /// Consume the session into its timing/traffic report. Callable at
    /// any point; cancelled or unfinished queries report the latency they
    /// accumulated so far.
    pub fn into_report(self) -> InstanceReport {
        let latencies: Vec<u64> = self
            .completion
            .iter()
            .zip(&self.first_dispatch)
            .map(|(&c, &f)| c.saturating_sub(f))
            .collect();
        InstanceReport {
            cycles: self.horizon,
            steps: self.steps_executed,
            dram: *self.dram.stats(),
            cache: *self.cache.stats(),
            sampler_batches: self.sampler_batches,
            latencies,
        }
    }
}

impl WalkSession for InstanceSession<'_> {
    fn advance(&mut self, max_steps: u64, sink: &mut dyn WalkSink) -> BatchProgress {
        let budget = max_steps.max(1);
        let mut steps = 0u64;
        let mut popped = 0u64;
        while popped < budget && !self.heap.is_empty() {
            if self.pop_event() {
                steps += 1;
            }
            popped += 1;
        }
        let paths_completed = self.drain_ready(sink);
        BatchProgress {
            steps,
            paths_completed,
            finished: self.finished(),
        }
    }

    fn cancel(&mut self, sink: &mut dyn WalkSink) -> BatchProgress {
        let horizon = self.cycles();
        while let Some(Reverse((_, i))) = self.heap.pop() {
            let i = i as usize;
            self.done[i] = true;
            // A query still in the heap with no steps taken never popped
            // an event: it accumulated zero cycles, so its latency stays
            // zero rather than inheriting the session horizon.
            self.completion[i] = if self.taken[i] > 0 { horizon } else { 0 };
        }
        // Never-admitted queries terminate at their start vertex.
        while self.next_pending < self.queries.len() {
            self.done[self.next_pending] = true;
            self.next_pending += 1;
        }
        let paths_completed = self.drain_ready(sink);
        BatchProgress {
            steps: 0,
            paths_completed,
            finished: true,
        }
    }

    fn finished(&self) -> bool {
        self.emit_next >= self.queries.len()
    }

    fn steps_done(&self) -> u64 {
        self.steps_executed
    }

    fn paths_completed(&self) -> usize {
        self.emit_next
    }

    fn model_seconds(&self) -> Option<f64> {
        Some(self.cycles() as f64 * self.cfg.dram.cycle_seconds())
    }

    fn diagnostics(&self) -> Option<String> {
        Some(format!(
            "cache hit {:.1}%",
            self.cache.stats().hit_ratio() * 100.0
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::{generators, GraphBuilder};
    use lightrw_rng::{Rng, SplitMix64};
    use lightrw_walker::app::{MetaPath, Node2Vec, Uniform};
    use lightrw_walker::path::validate_path;

    fn small_cfg() -> LightRwConfig {
        LightRwConfig::single_instance()
    }

    #[test]
    fn produces_valid_paths() {
        let g = generators::rmat_dataset(9, 4);
        let qs = QuerySet::per_nonisolated_vertex(&g, 8, 3);
        let inst = Instance::new(&g, &Uniform, small_cfg(), 7);
        let (results, report) = inst.run(&qs);
        assert_eq!(results.len(), qs.len());
        for p in results.iter() {
            validate_path(&g, &Uniform, p).expect("invalid path from hwsim");
        }
        assert!(report.cycles > 0);
        assert_eq!(report.steps, results.total_steps());
    }

    #[test]
    fn metapath_respects_relations() {
        let g = generators::rmat_dataset(8, 5);
        let mp = MetaPath::new(vec![0, 1, 2, 3, 0]);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 1);
        let inst = Instance::new(&g, &mp, small_cfg(), 9);
        let (results, _) = inst.run(&qs);
        for p in results.iter() {
            validate_path(&g, &mp, p).expect("metapath violation");
        }
    }

    #[test]
    fn node2vec_respects_weight_rules() {
        let g = generators::rmat_dataset(8, 6);
        let nv = Node2Vec::paper_params();
        let qs = QuerySet::n_queries(&g, 128, 12, 2);
        let inst = Instance::new(&g, &nv, small_cfg(), 11);
        let (results, report) = inst.run(&qs);
        for p in results.iter() {
            validate_path(&g, &nv, p).expect("node2vec violation");
        }
        // Second-order walks must touch the row cache at least twice per
        // step beyond the first.
        assert!(report.cache.lookups() > report.steps);
    }

    #[test]
    fn dead_end_terminates_walk() {
        let g = GraphBuilder::directed().edges([(0, 1), (1, 2)]).build();
        let qs = QuerySet::from_starts(vec![0], 99);
        let inst = Instance::new(&g, &Uniform, small_cfg(), 1);
        let (results, report) = inst.run(&qs);
        assert_eq!(results.path(0), &[0, 1, 2]);
        assert_eq!(report.steps, 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::rmat_dataset(8, 8);
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 4);
        let run = |seed| Instance::new(&g, &Uniform, small_cfg(), seed).run(&qs).0;
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn event_granular_batches_are_bit_identical_to_run() {
        // The session contract at event-heap granularity: any pop-budget
        // schedule — including single-event batches — reproduces the
        // monolithic run exactly, walks and model time alike.
        let g = generators::rmat_dataset(8, 12);
        let nv = Node2Vec::paper_params();
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 9);
        let inst = Instance::new(&g, &nv, small_cfg(), 3);
        let (whole, report) = inst.run(&qs);
        let mut batch_rng = SplitMix64::new(7);
        let mut batched = WalkResults::new();
        let mut session = inst.session(&qs);
        while !session.finished() {
            session.advance(1 + batch_rng.gen_range(9), &mut batched);
        }
        assert_eq!(whole, batched);
        let session_report = session.into_report();
        assert_eq!(report.cycles, session_report.cycles);
        assert_eq!(report.steps, session_report.steps);
        assert_eq!(report.latencies, session_report.latencies);
    }

    #[test]
    fn single_event_advance_pops_exactly_one_event() {
        let g = generators::rmat_dataset(7, 2);
        let qs = QuerySet::n_queries(&g, 16, 4, 1);
        let inst = Instance::new(&g, &Uniform, small_cfg(), 2);
        let mut session = inst.session(&qs);
        let mut results = WalkResults::new();
        let mut total_steps = 0u64;
        while !session.finished() {
            let p = session.advance(1, &mut results);
            assert!(p.steps <= 1, "one pop executes at most one step");
            total_steps += p.steps;
        }
        assert_eq!(total_steps, results.total_steps());
        assert_eq!(results.len(), qs.len());
    }

    #[test]
    fn cancel_emits_partial_paths_and_reports_model_time() {
        let g = generators::rmat_dataset(8, 3);
        let qs = QuerySet::per_nonisolated_vertex(&g, 50, 5);
        let inst = Instance::new(&g, &Uniform, small_cfg(), 4);
        let mut session = inst.session(&qs);
        let mut results = WalkResults::new();
        session.advance(200, &mut results);
        // Mid-stream the clock already moved, even if no path finished.
        assert!(session.model_seconds().unwrap() > 0.0);
        let progress = session.cancel(&mut results);
        let cancelled_cycles = session.cycles();
        assert!(cancelled_cycles > 0, "cancelled run keeps its horizon");
        assert!(progress.finished);
        assert_eq!(results.len(), qs.len(), "every query emitted exactly once");
        for p in results.iter() {
            validate_path(&g, &Uniform, p).unwrap();
        }
        // Cancelling again emits nothing further.
        let again = session.cancel(&mut results);
        assert_eq!(again.paths_completed, 0);
    }

    #[test]
    fn cancel_before_first_advance_emits_each_start_once() {
        // Empty-batch cancel at instance granularity, including queries
        // beyond the admission window (`max_inflight`): admitted and
        // never-admitted queries alike flush as start-only paths, exactly
        // once, with zero latency and zero cycles.
        let g = generators::rmat_dataset(7, 6);
        let qs = QuerySet::n_queries(&g, 64, 10, 4);
        let narrow = LightRwConfig {
            max_inflight: 4, // most queries never enter the pipeline
            ..small_cfg()
        };
        let inst = Instance::new(&g, &Uniform, narrow, 5);
        let mut session = inst.session(&qs);
        let progress = {
            let mut results = WalkResults::new();
            let p = session.cancel(&mut results);
            assert_eq!(results.len(), qs.len());
            for (q, path) in qs.queries().iter().zip(results.iter()) {
                assert_eq!(path, &[q.start]);
            }
            p
        };
        assert!(progress.finished);
        assert_eq!(progress.steps, 0);
        assert_eq!(progress.paths_completed, qs.len());
        assert_eq!(session.cycles(), 0, "no event executed, no model time");
        let report = session.into_report();
        assert_eq!(report.steps, 0);
        assert!(report.latencies.iter().all(|&l| l == 0));
    }

    #[test]
    fn pipelined_beats_staged_flow() {
        // The core paper claim (Fig. 13 WRS bar): the fine-grained
        // pipeline must be substantially faster than the staged flow.
        let g = generators::rmat_dataset(10, 2);
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 8);
        let fast = Instance::new(&g, &Uniform, small_cfg(), 3);
        let (_, fast_rep) = fast.run(&qs);
        let slow = Instance::new(&g, &Uniform, small_cfg().without_wrs_pipelining(), 3);
        let (_, slow_rep) = slow.run(&qs);
        assert!(
            slow_rep.cycles as f64 > 1.3 * fast_rep.cycles as f64,
            "staged {} vs pipelined {}",
            slow_rep.cycles,
            fast_rep.cycles
        );
    }

    #[test]
    fn dynamic_burst_beats_short_only_on_skewed_graph() {
        let g = generators::rmat_dataset(11, 5);
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 8);
        let (_, dyn_rep) = Instance::new(&g, &Uniform, small_cfg(), 3).run(&qs);
        let (_, short_rep) =
            Instance::new(&g, &Uniform, small_cfg().without_dynamic_burst(), 3).run(&qs);
        assert!(
            short_rep.cycles > dyn_rep.cycles,
            "short-only {} vs dynamic {}",
            short_rep.cycles,
            dyn_rep.cycles
        );
    }

    #[test]
    fn cache_reduces_cycles_on_skewed_graph() {
        let g = generators::rmat_dataset(11, 5);
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 8);
        let (_, with_cache) = Instance::new(&g, &Uniform, small_cfg(), 3).run(&qs);
        let (_, no_cache) = Instance::new(&g, &Uniform, small_cfg().without_cache(), 3).run(&qs);
        assert!(with_cache.cache.hits > 0);
        assert!(
            no_cache.cycles >= with_cache.cycles,
            "uncached {} vs cached {}",
            no_cache.cycles,
            with_cache.cycles
        );
    }

    #[test]
    fn latencies_recorded_per_query() {
        let g = generators::rmat_dataset(8, 1);
        let qs = QuerySet::n_queries(&g, 32, 4, 1);
        let inst = Instance::new(&g, &Uniform, small_cfg(), 2);
        let (_, report) = inst.run(&qs);
        assert_eq!(report.latencies.len(), 32);
        assert!(report.latencies.iter().all(|&l| l > 0));
    }

    #[test]
    fn bounded_inflight_keeps_latency_off_the_makespan() {
        // Fig. 15's property: with the scheduler admitting queries as
        // slots retire, a query's latency reflects its own pipeline
        // traversal, not the whole batch makespan.
        let g = generators::rmat_dataset(10, 4);
        let qs = QuerySet::n_queries(&g, 4096, 8, 1);
        let inst = Instance::new(&g, &Uniform, small_cfg(), 2);
        let (_, report) = inst.run(&qs);
        let median = {
            let mut v = report.latencies.clone();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(
            (median as f64) < 0.2 * report.cycles as f64,
            "median latency {median} vs makespan {}",
            report.cycles
        );
        // And admission must not lose queries.
        assert_eq!(report.latencies.len(), 4096);
    }

    #[test]
    fn bounded_inflight_preserves_functional_results() {
        let g = generators::rmat_dataset(9, 6);
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 2);
        let narrow = LightRwConfig {
            max_inflight: 4,
            ..small_cfg()
        };
        let inst = Instance::new(&g, &Uniform, narrow, 5);
        let (results, report) = inst.run(&qs);
        assert_eq!(results.len(), qs.len());
        assert_eq!(report.steps, results.total_steps());
        for p in results.iter() {
            validate_path(&g, &Uniform, p).unwrap();
        }
    }
}
