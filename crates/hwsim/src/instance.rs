//! One accelerator instance: the Fig. 3 datapath bound to one DRAM channel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lightrw_graph::{Graph, VertexId, COL_ENTRY_BYTES, ROW_ENTRY_BYTES};
use lightrw_memsim::{BurstPlan, CacheOutcome, DramChannel, RequestKind, RowCache};
use lightrw_walker::app::StepContext;
use lightrw_walker::{HotStepper, QuerySet, SamplerKind, WalkApp, WalkResults};

use crate::config::LightRwConfig;
use crate::report::InstanceReport;

/// Timing outcome of one walk step.
struct StepTiming {
    /// Cycle when the Query Controller dispatched the step.
    dispatched: u64,
    /// Cycle when the sampled vertex is available for the next step.
    done: u64,
}

/// One LightRW instance (paper Fig. 9 instantiates four, one per channel).
pub struct Instance<'g> {
    graph: &'g Graph,
    app: &'g dyn WalkApp,
    cfg: LightRwConfig,
    dram: DramChannel,
    cache: RowCache,
    /// The functional Weight Updater + WRS Sampler: one fused streaming
    /// pass per step through the shared hot path (DESIGN.md §5), with the
    /// instance's k-lane parallel WRS underneath.
    stepper: HotStepper,
    /// Query Controller occupancy (1 dispatch per cycle).
    dispatch_free: u64,
    /// WRS sampler occupancy (k items per cycle).
    sampler_free: u64,
    sampler_batches: u64,
}

impl<'g> Instance<'g> {
    /// Build an instance. `seed` must differ across instances so their WRS
    /// banks are independent.
    pub fn new(graph: &'g Graph, app: &'g dyn WalkApp, cfg: LightRwConfig, seed: u64) -> Self {
        let cfg = cfg.validated();
        let mut stepper = HotStepper::new(app, SamplerKind::ParallelWrs { k: cfg.k }, seed);
        stepper.reserve(graph.max_degree() as usize);
        Self {
            graph,
            app,
            cfg,
            dram: DramChannel::new(cfg.dram),
            cache: RowCache::direct_mapped(cfg.cache_policy, cfg.cache_index_bits),
            stepper,
            dispatch_free: 0,
            sampler_free: 0,
            sampler_batches: 0,
        }
    }

    /// Look up a vertex's row entry through the cache, charging DRAM on a
    /// miss. Returns the cycle at which `{addr, degree}` is available.
    fn row_info(&mut self, v: VertexId, issue: u64) -> u64 {
        let g = self.graph;
        let (outcome, _addr, _deg) = self.cache.lookup(v, || (g.row_entry_addr(v), g.degree(v)));
        match outcome {
            CacheOutcome::Hit => issue + 1,
            CacheOutcome::Miss => {
                let acc = self.dram.request(issue, 1, RequestKind::Start);
                self.dram.note_useful_bytes(ROW_ENTRY_BYTES);
                acc.data_ready
            }
        }
    }

    /// Stream a neighbor list through the dynamic burst engine. Returns
    /// (first-data cycle, last-data cycle).
    fn load_neighbors(&mut self, bytes: u64, issue: u64) -> (u64, u64) {
        if bytes == 0 {
            return (issue, issue);
        }
        let plan = BurstPlan::plan(bytes, self.cfg.burst, self.dram.config());
        let mut first = u64::MAX;
        let mut last = issue;
        for (beats, kind) in plan.commands() {
            let acc = self.dram.request(issue, beats, kind);
            first = first.min(acc.data_ready);
            last = last.max(acc.data_ready);
        }
        self.dram.note_useful_bytes(bytes);
        (first, last)
    }

    /// Execute one step of a query both functionally and in model time.
    fn execute_step(
        &mut self,
        ready: u64,
        cur: VertexId,
        prev: Option<VertexId>,
        step: u32,
    ) -> (Option<VertexId>, StepTiming) {
        let g = self.graph;
        let cfg = self.cfg;

        // --- Query Controller: one dispatch per cycle.
        let t1 = ready.max(self.dispatch_free);
        self.dispatch_free = t1 + 1;

        // --- Neighbor Info Loader (+ degree-aware cache).
        // Only the freshly sampled vertex needs a row_index fetch; the
        // previous vertex's {address, degree} was fetched when it was
        // current, and rides along in the query metadata (the Query
        // Controller "prepares query metadata" per Fig. 3).
        let second_order = self.app.second_order() && prev.is_some();
        let info_ready = self.row_info(cur, t1 + 1);

        let deg = g.degree(cur) as u64;
        if deg == 0 {
            // Dead end before any loading.
            return (
                None,
                StepTiming {
                    dispatched: t1,
                    done: info_ready + cfg.output_latency,
                },
            );
        }

        // --- Neighbor Loader (+ dynamic burst engine).
        let (first_data, mut last_data) = self.load_neighbors(deg * COL_ENTRY_BYTES, info_ready);
        let mut items_total = deg;
        if second_order {
            let deg_prev = g.degree(prev.unwrap()) as u64;
            if deg_prev > 0 {
                let (_, prev_last) = self.load_neighbors(deg_prev * COL_ENTRY_BYTES, info_ready);
                last_data = last_data.max(prev_last);
                // The Weight Updater merge-joins both sorted streams at k
                // elements/cycle total.
                items_total += deg_prev;
            }
        }

        // --- Functional selection (Weight Updater + WRS Sampler): the
        // fused streaming pass — weights are consumed lane by lane by the
        // k-lane WRS, never materialized, exactly as the hardware does.
        let next = self
            .stepper
            .step(g, self.app, StepContext { step, cur, prev });

        // --- Timing of the sampling path.
        let batches = items_total.div_ceil(cfg.k as u64);
        self.sampler_batches += batches;
        let done = if cfg.pipelined_sampling {
            // Fine-grained pipeline: sampling overlaps loading; the step
            // completes when both the last beat has landed and the sampler
            // has had `batches` issue slots.
            let sampler_start = first_data.max(self.sampler_free);
            self.sampler_free = sampler_start + batches;
            last_data.max(sampler_start + batches) + cfg.output_latency
        } else {
            // Staged flow (ablation): weights are materialized to DRAM,
            // the sampler re-reads them, builds its O(deg) table, then
            // draws — the Algorithm 2.1 structure with its 2·|N(v)|
            // intermediate accesses (paper Inefficiency 1).
            let weight_bytes = deg * 4;
            let (_, write_done) = self.load_neighbors(weight_bytes, last_data);
            let (_, read_done) = self.load_neighbors(weight_bytes, write_done);
            let init = deg; // O(n) table initialization
            let gen = 64 - deg.leading_zeros() as u64; // O(log n) draw
            read_done + init + gen + cfg.output_latency
        };

        (
            next,
            StepTiming {
                dispatched: t1,
                done,
            },
        )
    }

    /// Run a query set to completion on this instance.
    pub fn run(&mut self, queries: &QuerySet) -> (WalkResults, InstanceReport) {
        let qs = queries.queries();
        let n = qs.len();
        let mut cur: Vec<VertexId> = qs.iter().map(|q| q.start).collect();
        let mut prev: Vec<Option<VertexId>> = vec![None; n];
        let mut step: Vec<u32> = vec![0; n];
        let mut paths: Vec<Vec<VertexId>> = qs.iter().map(|q| vec![q.start]).collect();
        let mut first_dispatch: Vec<u64> = vec![0; n];
        let mut completion: Vec<u64> = vec![0; n];
        let mut steps_executed = 0u64;

        // Ready heap: (cycle, local index) min-ordered; the index breaks
        // ties deterministically. The Query Scheduler admits at most
        // `max_inflight` queries into the pipeline; the rest queue at the
        // input and enter as slots retire (hardware FIFO depth) — this is
        // what keeps per-query latency bounded and consistent (Fig. 15).
        let max_inflight = self.cfg.max_inflight;
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::with_capacity(max_inflight);
        let mut pending = (0..n).filter(|&i| qs[i].length > 0);
        for _ in 0..max_inflight {
            match pending.next() {
                Some(i) => heap.push(Reverse((0, i as u32))),
                None => break,
            }
        }

        while let Some(Reverse((ready, i))) = heap.pop() {
            let i = i as usize;
            let (next, timing) = self.execute_step(ready, cur[i], prev[i], step[i]);
            if step[i] == 0 {
                first_dispatch[i] = timing.dispatched;
            }
            let continues = match next {
                Some(v) => {
                    steps_executed += 1;
                    paths[i].push(v);
                    prev[i] = Some(cur[i]);
                    cur[i] = v;
                    step[i] += 1;
                    step[i] < qs[i].length
                }
                None => false, // dead end
            };
            if continues {
                heap.push(Reverse((timing.done, i as u32)));
            } else {
                completion[i] = timing.done;
                // Retire this query's slot; admit the next pending one.
                if let Some(j) = pending.next() {
                    heap.push(Reverse((timing.done, j as u32)));
                }
            }
        }

        let cycles = completion.iter().copied().max().unwrap_or(0);
        let latencies: Vec<u64> = completion
            .iter()
            .zip(&first_dispatch)
            .map(|(&c, &f)| c.saturating_sub(f))
            .collect();

        let mut results = WalkResults::with_capacity(n, paths.first().map_or(1, |p| p.len()));
        for p in &paths {
            results.push_path(p);
        }
        let report = InstanceReport {
            cycles,
            steps: steps_executed,
            dram: *self.dram.stats(),
            cache: *self.cache.stats(),
            sampler_batches: self.sampler_batches,
            latencies,
        };
        (results, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::{generators, GraphBuilder};
    use lightrw_walker::app::{MetaPath, Node2Vec, Uniform};
    use lightrw_walker::path::validate_path;

    fn small_cfg() -> LightRwConfig {
        LightRwConfig::single_instance()
    }

    #[test]
    fn produces_valid_paths() {
        let g = generators::rmat_dataset(9, 4);
        let qs = QuerySet::per_nonisolated_vertex(&g, 8, 3);
        let mut inst = Instance::new(&g, &Uniform, small_cfg(), 7);
        let (results, report) = inst.run(&qs);
        assert_eq!(results.len(), qs.len());
        for p in results.iter() {
            validate_path(&g, &Uniform, p).expect("invalid path from hwsim");
        }
        assert!(report.cycles > 0);
        assert_eq!(report.steps, results.total_steps());
    }

    #[test]
    fn metapath_respects_relations() {
        let g = generators::rmat_dataset(8, 5);
        let mp = MetaPath::new(vec![0, 1, 2, 3, 0]);
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 1);
        let mut inst = Instance::new(&g, &mp, small_cfg(), 9);
        let (results, _) = inst.run(&qs);
        for p in results.iter() {
            validate_path(&g, &mp, p).expect("metapath violation");
        }
    }

    #[test]
    fn node2vec_respects_weight_rules() {
        let g = generators::rmat_dataset(8, 6);
        let nv = Node2Vec::paper_params();
        let qs = QuerySet::n_queries(&g, 128, 12, 2);
        let mut inst = Instance::new(&g, &nv, small_cfg(), 11);
        let (results, report) = inst.run(&qs);
        for p in results.iter() {
            validate_path(&g, &nv, p).expect("node2vec violation");
        }
        // Second-order walks must touch the row cache at least twice per
        // step beyond the first.
        assert!(report.cache.lookups() > report.steps);
    }

    #[test]
    fn dead_end_terminates_walk() {
        let g = GraphBuilder::directed().edges([(0, 1), (1, 2)]).build();
        let qs = QuerySet::from_starts(vec![0], 99);
        let mut inst = Instance::new(&g, &Uniform, small_cfg(), 1);
        let (results, report) = inst.run(&qs);
        assert_eq!(results.path(0), &[0, 1, 2]);
        assert_eq!(report.steps, 2);
    }

    #[test]
    fn zero_length_queries_cost_nothing() {
        let g = GraphBuilder::undirected().edge(0, 1).build();
        let qs = QuerySet::from_starts(vec![0, 1], 0);
        let mut inst = Instance::new(&g, &Uniform, small_cfg(), 1);
        let (results, report) = inst.run(&qs);
        assert_eq!(results.len(), 2);
        assert_eq!(report.cycles, 0);
        assert_eq!(report.steps, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::rmat_dataset(8, 8);
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 4);
        let run = |seed| {
            let mut inst = Instance::new(&g, &Uniform, small_cfg(), seed);
            inst.run(&qs).0
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn pipelined_beats_staged_flow() {
        // The core paper claim (Fig. 13 WRS bar): the fine-grained
        // pipeline must be substantially faster than the staged flow.
        let g = generators::rmat_dataset(10, 2);
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 8);
        let mut fast = Instance::new(&g, &Uniform, small_cfg(), 3);
        let (_, fast_rep) = fast.run(&qs);
        let mut slow = Instance::new(&g, &Uniform, small_cfg().without_wrs_pipelining(), 3);
        let (_, slow_rep) = slow.run(&qs);
        assert!(
            slow_rep.cycles as f64 > 1.3 * fast_rep.cycles as f64,
            "staged {} vs pipelined {}",
            slow_rep.cycles,
            fast_rep.cycles
        );
    }

    #[test]
    fn dynamic_burst_beats_short_only_on_skewed_graph() {
        let g = generators::rmat_dataset(11, 5);
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 8);
        let (_, dyn_rep) = Instance::new(&g, &Uniform, small_cfg(), 3).run(&qs);
        let (_, short_rep) =
            Instance::new(&g, &Uniform, small_cfg().without_dynamic_burst(), 3).run(&qs);
        assert!(
            short_rep.cycles > dyn_rep.cycles,
            "short-only {} vs dynamic {}",
            short_rep.cycles,
            dyn_rep.cycles
        );
    }

    #[test]
    fn cache_reduces_cycles_on_skewed_graph() {
        let g = generators::rmat_dataset(11, 5);
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 8);
        let (_, with_cache) = Instance::new(&g, &Uniform, small_cfg(), 3).run(&qs);
        let (_, no_cache) = Instance::new(&g, &Uniform, small_cfg().without_cache(), 3).run(&qs);
        assert!(with_cache.cache.hits > 0);
        assert!(
            no_cache.cycles >= with_cache.cycles,
            "uncached {} vs cached {}",
            no_cache.cycles,
            with_cache.cycles
        );
    }

    #[test]
    fn latencies_recorded_per_query() {
        let g = generators::rmat_dataset(8, 1);
        let qs = QuerySet::n_queries(&g, 32, 4, 1);
        let mut inst = Instance::new(&g, &Uniform, small_cfg(), 2);
        let (_, report) = inst.run(&qs);
        assert_eq!(report.latencies.len(), 32);
        assert!(report.latencies.iter().all(|&l| l > 0));
    }

    #[test]
    fn bounded_inflight_keeps_latency_off_the_makespan() {
        // Fig. 15's property: with the scheduler admitting queries as
        // slots retire, a query's latency reflects its own pipeline
        // traversal, not the whole batch makespan.
        let g = generators::rmat_dataset(10, 4);
        let qs = QuerySet::n_queries(&g, 4096, 8, 1);
        let mut inst = Instance::new(&g, &Uniform, small_cfg(), 2);
        let (_, report) = inst.run(&qs);
        let median = {
            let mut v = report.latencies.clone();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(
            (median as f64) < 0.2 * report.cycles as f64,
            "median latency {median} vs makespan {}",
            report.cycles
        );
        // And admission must not lose queries.
        assert_eq!(report.latencies.len(), 4096);
    }

    #[test]
    fn bounded_inflight_preserves_functional_results() {
        let g = generators::rmat_dataset(9, 6);
        let qs = QuerySet::per_nonisolated_vertex(&g, 6, 2);
        let narrow = LightRwConfig {
            max_inflight: 4,
            ..small_cfg()
        };
        let mut inst = Instance::new(&g, &Uniform, narrow, 5);
        let (results, report) = inst.run(&qs);
        assert_eq!(results.len(), qs.len());
        assert_eq!(report.steps, results.total_steps());
        for p in results.iter() {
            validate_path(&g, &Uniform, p).unwrap();
        }
    }
}
