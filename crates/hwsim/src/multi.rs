//! Multi-instance deployment: one LightRW instance per DRAM channel with
//! queries distributed evenly (paper §6.1.5, Fig. 9).

use lightrw_graph::Graph;
use lightrw_walker::{QuerySet, WalkApp, WalkResults};

use crate::config::LightRwConfig;
use crate::instance::Instance;
use crate::report::SimReport;

/// The full simulated accelerator: `cfg.instances` independent instances,
/// each with a private DRAM channel, cache and sampler bank (each instance
/// also holds a private copy of the graph on the board; the model shares
/// the host-side CSR since the copies are identical).
pub struct LightRwSim<'g> {
    graph: &'g Graph,
    app: &'g dyn WalkApp,
    cfg: LightRwConfig,
}

impl<'g> LightRwSim<'g> {
    /// Create a simulator for `app` on `graph`.
    pub fn new(graph: &'g Graph, app: &'g dyn WalkApp, cfg: LightRwConfig) -> Self {
        Self {
            graph,
            app,
            cfg: cfg.validated(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &LightRwConfig {
        &self.cfg
    }

    /// Run the workload. Queries are split round-robin across instances;
    /// instances execute concurrently in hardware, so wall cycles are the
    /// maximum over instances.
    pub fn run(&self, queries: &QuerySet) -> SimReport {
        let parts = queries.partition(self.cfg.instances);
        let mut part_results: Vec<WalkResults> = Vec::with_capacity(parts.len());
        let mut instance_reports = Vec::with_capacity(parts.len());
        for (idx, part) in parts.iter().enumerate() {
            let mut inst = Instance::new(
                self.graph,
                self.app,
                self.cfg,
                self.cfg.seed ^ (idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let (results, report) = inst.run(part);
            part_results.push(results);
            instance_reports.push(report);
        }

        // Merge results back into global query-id order (round-robin split:
        // global index i lives at parts[i % n] position i / n).
        let n = parts.len();
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut results = WalkResults::with_capacity(total, 8);
        for i in 0..total {
            results.push_path(part_results[i % n].path(i / n));
        }

        let cycles = instance_reports.iter().map(|r| r.cycles).max().unwrap_or(0);
        let steps = instance_reports.iter().map(|r| r.steps).sum();
        let latencies: Vec<u64> = instance_reports
            .iter()
            .flat_map(|r| r.latencies.iter().copied())
            .collect();
        SimReport {
            cycles,
            seconds: cycles as f64 * self.cfg.dram.cycle_seconds(),
            steps,
            results,
            instances: instance_reports,
            latencies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::generators;
    use lightrw_walker::app::Uniform;
    use lightrw_walker::path::validate_path;

    #[test]
    fn results_merged_in_query_order() {
        let g = generators::rmat_dataset(8, 2);
        let qs = QuerySet::per_nonisolated_vertex(&g, 4, 5);
        let sim = LightRwSim::new(&g, &Uniform, LightRwConfig::default());
        let report = sim.run(&qs);
        assert_eq!(report.results.len(), qs.len());
        // Path i must start at query i's start vertex.
        for (i, q) in qs.queries().iter().enumerate() {
            assert_eq!(report.results.path(i)[0], q.start, "query {i}");
        }
        for p in report.results.iter() {
            validate_path(&g, &Uniform, p).unwrap();
        }
    }

    #[test]
    fn four_instances_faster_than_one() {
        let g = generators::rmat_dataset(10, 3);
        let qs = QuerySet::per_nonisolated_vertex(&g, 8, 5);
        let one = LightRwSim::new(
            &g,
            &Uniform,
            LightRwConfig {
                instances: 1,
                ..LightRwConfig::default()
            },
        )
        .run(&qs);
        let four = LightRwSim::new(&g, &Uniform, LightRwConfig::default()).run(&qs);
        assert!(
            (four.cycles as f64) < 0.45 * one.cycles as f64,
            "4-instance {} vs 1-instance {}",
            four.cycles,
            one.cycles
        );
    }

    #[test]
    fn seconds_follow_cycles() {
        let g = generators::rmat_dataset(8, 4);
        let qs = QuerySet::n_queries(&g, 64, 4, 2);
        let sim = LightRwSim::new(&g, &Uniform, LightRwConfig::default());
        let r = sim.run(&qs);
        let expect = r.cycles as f64 / 300e6;
        assert!((r.seconds - expect).abs() < 1e-12);
        assert!(r.steps_per_sec() > 0.0);
    }

    #[test]
    fn aggregates_cover_instances() {
        let g = generators::rmat_dataset(9, 5);
        let qs = QuerySet::per_nonisolated_vertex(&g, 4, 3);
        let r = LightRwSim::new(&g, &Uniform, LightRwConfig::default()).run(&qs);
        assert_eq!(r.instances.len(), 4);
        let total = r.dram_total();
        assert_eq!(
            total.requests,
            r.instances.iter().map(|i| i.dram.requests).sum::<u64>()
        );
        assert_eq!(r.latencies.len(), qs.len());
    }
}
