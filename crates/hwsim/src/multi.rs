//! Multi-instance deployment: one LightRW instance per DRAM channel with
//! queries distributed evenly (paper §6.1.5, Fig. 9).

use std::collections::VecDeque;

use lightrw_graph::{Graph, VertexId};
use lightrw_walker::engine::{BatchProgress, WalkEngine, WalkSession, WalkSink};
use lightrw_walker::{QuerySet, WalkApp, WalkResults};

use crate::config::LightRwConfig;
use crate::instance::{Instance, InstanceSession};
use crate::report::SimReport;

/// The full simulated accelerator: `cfg.instances` independent instances,
/// each with a private DRAM channel, cache and sampler bank (each instance
/// also holds a private copy of the graph on the board; the model shares
/// the host-side CSR since the copies are identical).
pub struct LightRwSim<'g> {
    graph: &'g Graph,
    app: &'g dyn WalkApp,
    cfg: LightRwConfig,
}

impl<'g> LightRwSim<'g> {
    /// Create a simulator for `app` on `graph`.
    pub fn new(graph: &'g Graph, app: &'g dyn WalkApp, cfg: LightRwConfig) -> Self {
        Self {
            graph,
            app,
            cfg: cfg.validated(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &LightRwConfig {
        &self.cfg
    }

    /// Start a batched streaming session over all instances (concrete
    /// type; the [`WalkEngine`] impl boxes the same thing).
    pub fn session(&self, queries: &QuerySet) -> SimSession<'g> {
        SimSession::new(self, queries)
    }

    /// Run the workload. Queries are split round-robin across instances;
    /// instances execute concurrently in hardware, so wall cycles are the
    /// maximum over instances. One session driven to completion.
    pub fn run(&self, queries: &QuerySet) -> SimReport {
        let total: usize = queries.len();
        let mut results = WalkResults::with_capacity(total, 8);
        let mut session = self.session(queries);
        while !session.finished() {
            session.advance(u64::MAX, &mut results);
        }
        session.into_report(results)
    }
}

impl WalkEngine for LightRwSim<'_> {
    fn label(&self) -> String {
        format!("sim(x{})", self.cfg.instances)
    }

    fn start_session<'s>(&'s self, queries: &QuerySet) -> Box<dyn WalkSession + 's> {
        Box::new(self.session(queries))
    }

    fn graph_images(&self) -> u64 {
        // One replica per DRAM channel (paper §6.1.5).
        self.cfg.instances as u64
    }
}

/// A streaming session of the whole simulated board: each instance runs
/// its round-robin share as an [`InstanceSession`]; completed paths are
/// re-interleaved and emitted in **global** query-id order (round-robin
/// split: global id `i` lives at instance `i % n`, local position
/// `i / n`). Per-instance reordering is bounded by `max_inflight`, so the
/// buffer stays small regardless of workload size.
pub struct SimSession<'g> {
    cfg: LightRwConfig,
    sessions: Vec<InstanceSession<'g>>,
    /// Paths emitted by each instance, in local order, awaiting global
    /// in-order emission.
    queues: Vec<VecDeque<Vec<VertexId>>>,
    total: usize,
    emit_next: usize,
}

impl<'g> SimSession<'g> {
    fn new(sim: &LightRwSim<'g>, queries: &QuerySet) -> Self {
        let parts = queries.partition(sim.cfg.instances);
        let sessions = parts
            .iter()
            .enumerate()
            .map(|(idx, part)| {
                Instance::new(
                    sim.graph,
                    sim.app,
                    sim.cfg,
                    sim.cfg.seed ^ (idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )
                .session(part)
            })
            .collect::<Vec<_>>();
        let queues = vec![VecDeque::new(); sessions.len()];
        Self {
            cfg: sim.cfg,
            sessions,
            queues,
            total: queries.len(),
            emit_next: 0,
        }
    }

    /// Emit globally in-order paths buffered by the instance queues.
    fn drain_ready(&mut self, sink: &mut dyn WalkSink) -> usize {
        let n = self.queues.len();
        let mut emitted = 0;
        while self.emit_next < self.total {
            let Some(path) = self.queues[self.emit_next % n].pop_front() else {
                break;
            };
            sink.emit(self.emit_next as u32, &path);
            self.emit_next += 1;
            emitted += 1;
        }
        emitted
    }

    /// Wall cycles so far — the slowest instance.
    pub fn cycles(&self) -> u64 {
        self.sessions.iter().map(|s| s.cycles()).max().unwrap_or(0)
    }

    /// Consume the session into the aggregate [`SimReport`], attaching
    /// the collected `results` (which may be empty when paths were
    /// streamed elsewhere).
    pub fn into_report(self, results: WalkResults) -> SimReport {
        let instances: Vec<_> = self.sessions.into_iter().map(|s| s.into_report()).collect();
        let cycles = instances.iter().map(|r| r.cycles).max().unwrap_or(0);
        let steps = instances.iter().map(|r| r.steps).sum();
        let latencies: Vec<u64> = instances
            .iter()
            .flat_map(|r| r.latencies.iter().copied())
            .collect();
        SimReport {
            cycles,
            seconds: cycles as f64 * self.cfg.dram.cycle_seconds(),
            steps,
            results,
            instances,
            latencies,
        }
    }
}

impl WalkSession for SimSession<'_> {
    fn advance(&mut self, max_steps: u64, sink: &mut dyn WalkSink) -> BatchProgress {
        let Self {
            sessions,
            queues,
            emit_next,
            total,
            ..
        } = self;
        let n = queues.len();
        let emitted_before = *emit_next;
        let mut steps = 0u64;
        for (idx, s) in sessions.iter_mut().enumerate() {
            if s.finished() {
                continue;
            }
            // Forward a path straight to the caller when it is the next
            // global id (the common case, and the only case when
            // `instances == 1`); buffer only genuinely out-of-order
            // completions.
            let mut local = |_id: u32, path: &[u32]| {
                if *emit_next < *total && *emit_next % n == idx && queues[idx].is_empty() {
                    sink.emit(*emit_next as u32, path);
                    *emit_next += 1;
                } else {
                    queues[idx].push_back(path.to_vec());
                }
            };
            steps += s.advance(max_steps, &mut local).steps;
        }
        self.drain_ready(sink);
        BatchProgress {
            steps,
            paths_completed: self.emit_next - emitted_before,
            finished: self.finished(),
        }
    }

    fn cancel(&mut self, sink: &mut dyn WalkSink) -> BatchProgress {
        for (s, queue) in self.sessions.iter_mut().zip(&mut self.queues) {
            let mut local = |_id: u32, path: &[u32]| queue.push_back(path.to_vec());
            s.cancel(&mut local);
        }
        let paths_completed = self.drain_ready(sink);
        BatchProgress {
            steps: 0,
            paths_completed,
            finished: true,
        }
    }

    fn finished(&self) -> bool {
        self.emit_next >= self.total
    }

    fn steps_done(&self) -> u64 {
        self.sessions.iter().map(|s| s.steps_done()).sum()
    }

    fn paths_completed(&self) -> usize {
        self.emit_next
    }

    fn model_seconds(&self) -> Option<f64> {
        Some(self.cycles() as f64 * self.cfg.dram.cycle_seconds())
    }

    fn diagnostics(&self) -> Option<String> {
        let (mut hits, mut misses) = (0u64, 0u64);
        for s in &self.sessions {
            let c = s.cache_stats();
            hits += c.hits;
            misses += c.misses;
        }
        let lookups = hits + misses;
        let ratio = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        Some(format!("cache hit {:.1}%", ratio * 100.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::generators;
    use lightrw_rng::{Rng, SplitMix64};
    use lightrw_walker::app::{Node2Vec, Uniform};
    use lightrw_walker::path::validate_path;

    #[test]
    fn results_merged_in_query_order() {
        let g = generators::rmat_dataset(8, 2);
        let qs = QuerySet::per_nonisolated_vertex(&g, 4, 5);
        let sim = LightRwSim::new(&g, &Uniform, LightRwConfig::default());
        let report = sim.run(&qs);
        assert_eq!(report.results.len(), qs.len());
        // Path i must start at query i's start vertex.
        for (i, q) in qs.queries().iter().enumerate() {
            assert_eq!(report.results.path(i)[0], q.start, "query {i}");
        }
        for p in report.results.iter() {
            validate_path(&g, &Uniform, p).unwrap();
        }
    }

    #[test]
    fn four_instances_faster_than_one() {
        let g = generators::rmat_dataset(10, 3);
        let qs = QuerySet::per_nonisolated_vertex(&g, 8, 5);
        let one = LightRwSim::new(
            &g,
            &Uniform,
            LightRwConfig {
                instances: 1,
                ..LightRwConfig::default()
            },
        )
        .run(&qs);
        let four = LightRwSim::new(&g, &Uniform, LightRwConfig::default()).run(&qs);
        assert!(
            (four.cycles as f64) < 0.45 * one.cycles as f64,
            "4-instance {} vs 1-instance {}",
            four.cycles,
            one.cycles
        );
    }

    #[test]
    fn seconds_follow_cycles() {
        let g = generators::rmat_dataset(8, 4);
        let qs = QuerySet::n_queries(&g, 64, 4, 2);
        let sim = LightRwSim::new(&g, &Uniform, LightRwConfig::default());
        let r = sim.run(&qs);
        let expect = r.cycles as f64 / 300e6;
        assert!((r.seconds - expect).abs() < 1e-12);
        assert!(r.steps_per_sec() > 0.0);
    }

    #[test]
    fn aggregates_cover_instances() {
        let g = generators::rmat_dataset(9, 5);
        let qs = QuerySet::per_nonisolated_vertex(&g, 4, 3);
        let r = LightRwSim::new(&g, &Uniform, LightRwConfig::default()).run(&qs);
        assert_eq!(r.instances.len(), 4);
        let total = r.dram_total();
        assert_eq!(
            total.requests,
            r.instances.iter().map(|i| i.dram.requests).sum::<u64>()
        );
        assert_eq!(r.latencies.len(), qs.len());
    }

    #[test]
    fn batched_multi_instance_sessions_match_run() {
        // Global-order re-interleaving under arbitrary batch schedules
        // must reproduce the monolithic run bit for bit, timing included.
        let g = generators::rmat_dataset(8, 6);
        let nv = Node2Vec::paper_params();
        let qs = QuerySet::per_nonisolated_vertex(&g, 5, 7);
        let sim = LightRwSim::new(&g, &nv, LightRwConfig::default());
        let whole = sim.run(&qs);
        let mut batch_rng = SplitMix64::new(31);
        let mut batched = WalkResults::new();
        let mut session = sim.session(&qs);
        while !session.finished() {
            session.advance(1 + batch_rng.gen_range(7), &mut batched);
        }
        assert_eq!(whole.results, batched);
        let report = session.into_report(batched);
        assert_eq!(whole.cycles, report.cycles);
        assert_eq!(whole.steps, report.steps);
        assert_eq!(whole.latencies, report.latencies);
    }

    #[test]
    fn cancel_before_first_advance_flushes_start_only_paths() {
        // The empty-batch cancel contract (DESIGN.md §6): cancelling a
        // session that never advanced emits every query exactly once as a
        // start-vertex-only path, with zero steps and zero model time —
        // identical to the software engines' behaviour (the cross-engine
        // pin lives in tests/engine_agreement.rs).
        let g = generators::rmat_dataset(7, 8);
        let qs = QuerySet::per_nonisolated_vertex(&g, 9, 3);
        let sim = LightRwSim::new(&g, &Uniform, LightRwConfig::default());
        let mut session = sim.session(&qs);
        let mut results = WalkResults::new();
        let progress = session.cancel(&mut results);
        assert!(progress.finished);
        assert_eq!(progress.paths_completed, qs.len());
        assert_eq!(progress.steps, 0);
        assert_eq!(results.len(), qs.len());
        for (q, p) in qs.queries().iter().zip(results.iter()) {
            assert_eq!(p, &[q.start], "start-only partial path");
        }
        assert_eq!(session.steps_done(), 0);
        assert_eq!(session.model_seconds(), Some(0.0), "no event ever popped");
        // Per-instance latency accounting stays all-zero too.
        let report = session.into_report(results);
        assert!(report.latencies.iter().all(|&l| l == 0));
    }

    #[test]
    fn interleaved_sessions_share_the_board_weighted_fairly() {
        // Session fairness under multi-tenant interleaving: two jobs on
        // one simulated board, scheduled by the service's deficit
        // round-robin with 3:1 weights, must execute steps in ~that ratio
        // while both stay active — and both model clocks must advance
        // (neither tenant starves the other off the simulated hardware).
        use lightrw_walker::service::{JobSpec, ServiceConfig, WalkService};
        let g = generators::rmat_dataset(9, 11);
        let sim = LightRwSim::new(&g, &Uniform, LightRwConfig::single_instance());
        let workers: Vec<&dyn WalkEngine> = vec![&sim];
        let mut service = WalkService::new(
            workers,
            ServiceConfig {
                quantum: 64,
                ..Default::default()
            },
        );
        let heavy = service.submit(
            JobSpec::tenant(0).weight(3),
            QuerySet::n_queries(&g, 256, 200, 1),
        );
        let light = service.submit(
            JobSpec::tenant(1).weight(1),
            QuerySet::n_queries(&g, 256, 200, 2),
        );
        for _ in 0..80 {
            service.tick();
        }
        assert!(service.job_steps(heavy) > 0 && service.job_steps(light) > 0);
        let ratio = service.job_steps(heavy) as f64 / service.job_steps(light) as f64;
        assert!(
            (2.0..4.5).contains(&ratio),
            "weighted interleaving off: heavy/light = {ratio:.2}"
        );
        // Both sessions carry their own model clock forward.
        assert!(service.job_clock_s(heavy) > 0.0);
        assert!(service.job_clock_s(light) > 0.0);
    }

    #[test]
    fn sim_session_reports_model_time() {
        let g = generators::rmat_dataset(8, 7);
        let qs = QuerySet::per_nonisolated_vertex(&g, 4, 2);
        let sim = LightRwSim::new(&g, &Uniform, LightRwConfig::default());
        let whole = sim.run(&qs);
        let mut sink = |_id: u32, _p: &[u32]| {};
        let mut session = sim.session(&qs);
        while !session.finished() {
            session.advance(64, &mut sink);
        }
        let model = session.model_seconds().expect("sim has a timing model");
        assert!((model - whole.seconds).abs() < 1e-12);
    }
}
