//! Accelerator configuration.

use lightrw_memsim::{BurstConfig, CachePolicy, DramConfig};
use lightrw_walker::SamplerKind;

/// Configuration of one LightRW deployment (paper §6.1 defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LightRwConfig {
    /// WRS parallelism degree `k` — neighbors consumed per cycle. The
    /// paper saturates one channel at k = 16 (Fig. 10a).
    pub k: usize,
    /// Dynamic burst configuration; `b1+b32` is the paper's pick (§6.3.2).
    pub burst: BurstConfig,
    /// Row-cache replacement policy (degree-aware by default).
    pub cache_policy: CachePolicy,
    /// Row-cache size: `2^cache_index_bits` entries (paper: 2^12).
    pub cache_index_bits: u32,
    /// DRAM channel model.
    pub dram: DramConfig,
    /// Number of accelerator instances (one per DRAM channel; U250 = 4).
    pub instances: usize,
    /// Fine-grained pipelined sampling (the WRS contribution). `false`
    /// reproduces the staged CPU-style flow for the Fig. 13 ablation:
    /// stages serialize and the sampler's O(deg) intermediate table is
    /// written to and re-read from DRAM.
    pub pipelined_sampling: bool,
    /// RNG seed for the WRS sampler banks.
    pub seed: u64,
    /// Output-forwarding latency in cycles appended to each step
    /// (pipeline drain between sampler and query controller).
    pub output_latency: u64,
    /// Maximum queries in flight per instance. Hardware bounds this by the
    /// Query Scheduler's FIFO depth: queries stream through the pipeline
    /// and a new one is admitted when one retires. The channel saturates
    /// with ~8 in flight (per-step latency / per-step occupancy); beyond
    /// that, extra occupancy is pure queueing delay (Little's law), so 16
    /// buys a 2x saturation margin while keeping Fig. 15's low, consistent
    /// per-query latencies.
    pub max_inflight: usize,
    /// **Functional** sampler override for conformance studies: `None`
    /// (the default, and the modeled hardware) samples with the paper's
    /// parallel WRS datapath at this config's `k`; `Some(kind)` swaps the
    /// sampling *function* — e.g. `SamplerKind::Rejection` to validate
    /// the second-order fast path's distribution on the sim engine. The
    /// timing model is unchanged either way: cycles are still priced as
    /// the WRS datapath, so override runs answer "what would this
    /// distribution look like", never "how fast would that hardware be".
    pub sampler: Option<SamplerKind>,
}

impl Default for LightRwConfig {
    fn default() -> Self {
        Self {
            k: 16,
            burst: BurstConfig::paper_best(),
            cache_policy: CachePolicy::DegreeAware,
            cache_index_bits: 12,
            dram: DramConfig::default(),
            instances: 4,
            pipelined_sampling: true,
            seed: 0x11_917,
            output_latency: 4,
            max_inflight: 16,
            sampler: None,
        }
    }
}

impl LightRwConfig {
    /// Single-instance configuration (component experiments use one
    /// channel; §6.2's sampler study explicitly pins one DRAM channel).
    pub fn single_instance() -> Self {
        Self {
            instances: 1,
            ..Self::default()
        }
    }

    /// Fig. 13 ablation: disable fine-grained WRS pipelining.
    pub fn without_wrs_pipelining(mut self) -> Self {
        self.pipelined_sampling = false;
        self
    }

    /// Fig. 13 ablation: disable the dynamic burst engine (short-only).
    pub fn without_dynamic_burst(mut self) -> Self {
        self.burst = BurstConfig::short_only();
        self
    }

    /// Fig. 13 ablation: disable the degree-aware cache.
    pub fn without_cache(mut self) -> Self {
        self.cache_policy = CachePolicy::None;
        self
    }

    /// Validate invariants; panics with a clear message on nonsense.
    pub fn validated(self) -> Self {
        assert!(self.k >= 1, "k must be at least 1");
        assert!(self.instances >= 1, "need at least one instance");
        assert!(self.burst.short_beats >= 1, "short burst must be >= 1 beat");
        assert!(self.output_latency < 1_000, "implausible output latency");
        assert!(self.max_inflight >= 1, "need at least one in-flight query");
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = LightRwConfig::default();
        assert_eq!(c.k, 16);
        assert_eq!(c.burst, BurstConfig::with_long(32));
        assert_eq!(c.cache_index_bits, 12);
        assert_eq!(c.instances, 4);
        assert!(c.pipelined_sampling);
        assert_eq!(c.cache_policy, CachePolicy::DegreeAware);
    }

    #[test]
    fn ablation_builders() {
        let c = LightRwConfig::single_instance().without_wrs_pipelining();
        assert!(!c.pipelined_sampling);
        let c = LightRwConfig::default().without_dynamic_burst();
        assert_eq!(c.burst, BurstConfig::short_only());
        let c = LightRwConfig::default().without_cache();
        assert_eq!(c.cache_policy, CachePolicy::None);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        LightRwConfig {
            k: 0,
            ..Default::default()
        }
        .validated();
    }
}
