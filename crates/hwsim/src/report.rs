//! Simulation reports: timing, traffic and functional outputs.

use lightrw_memsim::{CacheStats, DramStats};
use lightrw_walker::WalkResults;

/// Per-instance outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct InstanceReport {
    /// Total cycles until this instance drained its queries.
    pub cycles: u64,
    /// Steps actually executed (dead ends shorten walks).
    pub steps: u64,
    /// DRAM channel statistics.
    pub dram: DramStats,
    /// Row-cache statistics.
    pub cache: CacheStats,
    /// WRS batches consumed (sampler busy cycles).
    pub sampler_batches: u64,
    /// Per-query latency in cycles (dispatch of first step → last sample),
    /// indexed by local query order.
    pub latencies: Vec<u64>,
}

/// Aggregated outcome of a multi-instance simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Wall cycles = the slowest instance (instances run concurrently).
    pub cycles: u64,
    /// Simulated seconds at the configured kernel clock.
    pub seconds: f64,
    /// Total steps executed across instances.
    pub steps: u64,
    /// Walk outputs in global query-id order.
    pub results: WalkResults,
    /// Per-instance details.
    pub instances: Vec<InstanceReport>,
    /// All per-query latencies in cycles (order: interleaved by instance).
    pub latencies: Vec<u64>,
}

impl SimReport {
    /// Steps per simulated second — the paper's throughput metric
    /// (Figs. 16–17).
    pub fn steps_per_sec(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.steps as f64 / self.seconds
        }
    }

    /// Aggregate DRAM statistics across instances.
    pub fn dram_total(&self) -> DramStats {
        let mut total = DramStats::default();
        for i in &self.instances {
            total.requests += i.dram.requests;
            total.beats += i.dram.beats;
            total.bytes += i.dram.bytes;
            total.useful_bytes += i.dram.useful_bytes;
            total.busy_cycles += i.dram.busy_cycles;
        }
        total
    }

    /// Aggregate cache statistics across instances.
    pub fn cache_total(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for i in &self.instances {
            total.hits += i.cache.hits;
            total.misses += i.cache.misses;
        }
        total
    }

    /// Latency quartiles in cycles: (min, p25, median, p75, max) — the
    /// Fig. 15 box-plot statistics.
    pub fn latency_quartiles(&self) -> Option<(u64, u64, u64, u64, u64)> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut v = self.latencies.clone();
        v.sort_unstable();
        let q = |f: f64| v[(((v.len() - 1) as f64) * f) as usize];
        Some((v[0], q(0.25), q(0.5), q(0.75), *v.last().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_latencies(lat: Vec<u64>) -> SimReport {
        SimReport {
            cycles: 100,
            seconds: 1e-3,
            steps: 500,
            results: WalkResults::new(),
            instances: vec![],
            latencies: lat,
        }
    }

    #[test]
    fn throughput_math() {
        let r = report_with_latencies(vec![]);
        assert!((r.steps_per_sec() - 500e3).abs() < 1e-6);
    }

    #[test]
    fn quartiles_of_known_series() {
        let r = report_with_latencies((1..=101).collect());
        let (min, p25, med, p75, max) = r.latency_quartiles().unwrap();
        assert_eq!((min, p25, med, p75, max), (1, 26, 51, 76, 101));
    }

    #[test]
    fn quartiles_empty_is_none() {
        assert!(report_with_latencies(vec![]).latency_quartiles().is_none());
    }

    #[test]
    fn zero_seconds_throughput_is_zero() {
        let mut r = report_with_latencies(vec![]);
        r.seconds = 0.0;
        assert_eq!(r.steps_per_sec(), 0.0);
    }
}
