//! Sequential weighted reservoir sampling (WRS).
//!
//! The single-pass sampler LightRW builds on (§3.2): item `i` with weight
//! `w_i` replaces the reservoir with probability `w_i / Σ_{m≤i} w_m`. After
//! the full pass, item `i` survives with probability exactly
//! `w_i / Σ w_m` — the telescoping product of its acceptance and all later
//! rejections. Two acceptance tests are provided:
//!
//! - [`select_f64`]: the textbook floating-point comparison `p > r`;
//! - [`select_integer`]: the hardware's division-free test (Eq. 6→8):
//!   `2^32 · w > r* · (w_sum + w) + w`, evaluated in 128-bit integer
//!   arithmetic (the DSP datapath equivalent).
//!
//! Both are used as oracles for the parallel sampler.

use lightrw_rng::{Rng, StreamBank};

/// The Eq. 8 acceptance test: should the item with weight `w` replace the
/// reservoir, given cumulative weight `cum` *including* `w`, against the
/// 32-bit uniform `r`?
///
/// Derivation (paper §4.2): accept iff `w / cum > r / (2^32 - 1)`
/// ⇔ `w · (2^32 - 1) > r · cum` ⇔ `(w << 32) > r · cum + w`.
#[inline]
pub fn accepts_integer(w: u32, cum: u64, r: u32) -> bool {
    if w == 0 {
        return false;
    }
    debug_assert!(cum >= w as u64);
    let lhs = (w as u128) << 32;
    let rhs = (r as u128) * (cum as u128) + w as u128;
    lhs > rhs
}

/// Single-pass weighted selection over a weight stream using f64
/// probabilities. Returns the selected index, or `None` if every weight is
/// zero (dead end).
pub fn select_f64<R: Rng>(weights: impl IntoIterator<Item = u32>, rng: &mut R) -> Option<usize> {
    let mut cum = 0u64;
    let mut selected = None;
    for (i, w) in weights.into_iter().enumerate() {
        if w == 0 {
            continue;
        }
        cum += w as u64;
        let p = w as f64 / cum as f64;
        if rng.next_f64() < p {
            selected = Some(i);
        }
    }
    selected
}

/// Single-pass weighted selection using the hardware integer test, drawing
/// one 32-bit uniform per item from lane 0 of a [`StreamBank`].
pub fn select_integer(
    weights: impl IntoIterator<Item = u32>,
    bank: &mut StreamBank,
) -> Option<usize> {
    let mut cum = 0u64;
    let mut selected = None;
    for (i, w) in weights.into_iter().enumerate() {
        if w == 0 {
            continue;
        }
        cum += w as u64;
        let r = bank.next_u32_lane(0);
        if accepts_integer(w, cum, r) {
            selected = Some(i);
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{assert_counts_match, counts_from};
    use lightrw_rng::SplitMix64;

    #[test]
    fn all_zero_weights_dead_end() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(select_f64([0, 0, 0], &mut rng), None);
        let mut bank = StreamBank::new(1, 1);
        assert_eq!(select_integer([0, 0, 0], &mut bank), None);
        assert_eq!(select_f64(std::iter::empty(), &mut rng), None);
    }

    #[test]
    fn first_nonzero_item_always_accepted() {
        // For the first non-zero item, p = w/w = 1 > r always (f64 path),
        // so a single-item stream is always selected.
        let mut rng = SplitMix64::new(2);
        for _ in 0..100 {
            assert_eq!(select_f64([7], &mut rng), Some(0));
        }
    }

    #[test]
    fn integer_first_item_accepted_with_high_probability() {
        // Eq. 8 with cum == w: accept iff (w<<32) > r·w + w ⇔ r < 2^32 - 1
        // - tiny boundary: rejected only when r == u32::MAX.
        assert!(accepts_integer(5, 5, 0));
        assert!(accepts_integer(5, 5, u32::MAX - 1));
        assert!(!accepts_integer(5, 5, u32::MAX));
    }

    #[test]
    fn acceptance_test_zero_weight_never_accepts() {
        assert!(!accepts_integer(0, 10, 0));
    }

    #[test]
    fn acceptance_probability_halves_at_double_cum() {
        // w=1, cum=2 → accept iff 2^32 > 2r + 1 ⇔ r <= 2^31 - 1.
        let boundary = (1u64 << 31) - 1;
        assert!(accepts_integer(1, 2, boundary as u32));
        assert!(!accepts_integer(1, 2, (boundary + 1) as u32));
    }

    #[test]
    fn f64_distribution_matches_weights() {
        let weights = [3u32, 1, 6, 0, 2];
        let mut rng = SplitMix64::new(3);
        let counts = counts_from(weights.len(), 200_000, || {
            select_f64(weights.iter().copied(), &mut rng).unwrap()
        });
        assert_counts_match(&counts, &weights);
    }

    #[test]
    fn integer_distribution_matches_weights() {
        let weights = [3u32, 1, 6, 0, 2];
        let mut bank = StreamBank::new(4, 1);
        let counts = counts_from(weights.len(), 200_000, || {
            select_integer(weights.iter().copied(), &mut bank).unwrap()
        });
        assert_counts_match(&counts, &weights);
    }

    #[test]
    fn integer_and_f64_agree_on_large_weights() {
        // Weights near u32::MAX exercise the 128-bit path.
        let weights = [u32::MAX, u32::MAX / 2, u32::MAX];
        let mut bank = StreamBank::new(5, 1);
        let counts = counts_from(weights.len(), 100_000, || {
            select_integer(weights.iter().copied(), &mut bank).unwrap()
        });
        assert_counts_match(&counts, &weights);
    }

    proptest::proptest! {
        #[test]
        fn selected_index_is_always_nonzero_weight(
            weights in proptest::collection::vec(0u32..100, 1..40),
            seed in 0u64..1000,
        ) {
            let mut rng = SplitMix64::new(seed);
            if let Some(i) = select_f64(weights.iter().copied(), &mut rng) {
                proptest::prop_assert!(weights[i] > 0);
            } else {
                proptest::prop_assert!(weights.iter().all(|&w| w == 0));
            }
            let mut bank = StreamBank::new(seed, 1);
            if let Some(i) = select_integer(weights.iter().copied(), &mut bank) {
                proptest::prop_assert!(weights[i] > 0);
            } else {
                proptest::prop_assert!(weights.iter().all(|&w| w == 0));
            }
        }
    }
}
