//! A-Res: the Efraimidis–Spirakis weighted reservoir algorithm the paper
//! builds on (its citation for WRS; §3.2 notes LightRW sets the reservoir
//! size `n_res = 1` because one neighbor is sampled per step).
//!
//! A-Res keeps the `n_res` items with the largest keys `u_i^(1/w_i)`
//! (`u_i` uniform), yielding a weighted sample *without replacement* in a
//! single pass over a stream of unknown length. This module implements
//! the general case, both as the cited algorithm and as the natural
//! extension point for multi-sample walk variants (e.g. sampling several
//! successors for tree-structured exploration) the paper leaves open.

use lightrw_rng::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Keyed {
    /// A-Res key `u^(1/w)`; larger is better.
    key: f64,
    index: usize,
}

// Min-heap by key (BinaryHeap is a max-heap, so invert the ordering).
impl Eq for Keyed {}
impl PartialOrd for Keyed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Keyed {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .partial_cmp(&self.key)
            .expect("A-Res keys are never NaN")
            .then_with(|| other.index.cmp(&self.index))
    }
}

/// Single-pass weighted reservoir sampler without replacement.
#[derive(Debug, Clone)]
pub struct AResSampler {
    capacity: usize,
    heap: BinaryHeap<Keyed>,
    consumed: usize,
}

impl AResSampler {
    /// Reservoir of `n_res` items (`n_res = 1` is LightRW's setting).
    pub fn new(n_res: usize) -> Self {
        assert!(n_res >= 1, "reservoir must hold at least one item");
        Self {
            capacity: n_res,
            heap: BinaryHeap::with_capacity(n_res + 1),
            consumed: 0,
        }
    }

    /// Offer the next stream item; zero-weight items are never selected.
    pub fn offer<R: Rng>(&mut self, weight: u32, rng: &mut R) {
        let index = self.consumed;
        self.consumed += 1;
        if weight == 0 {
            return;
        }
        // u^(1/w) in (0,1); use log-space for numeric robustness:
        // ln(key) = ln(u)/w — monotone equivalent, so compare that.
        let u: f64 = rng.next_f64().max(f64::MIN_POSITIVE);
        let key = u.ln() / weight as f64; // negative; larger (closer to 0) wins
        if self.heap.len() < self.capacity {
            self.heap.push(Keyed { key, index });
        } else if let Some(min) = self.heap.peek() {
            if key > min.key {
                self.heap.pop();
                self.heap.push(Keyed { key, index });
            }
        }
    }

    /// Items consumed so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Finish the pass: the selected stream indices, in stream order.
    pub fn finish(self) -> Vec<usize> {
        let mut out: Vec<usize> = self.heap.into_iter().map(|k| k.index).collect();
        out.sort_unstable();
        out
    }
}

/// Convenience: sample `n_res` distinct indices from `weights`.
pub fn sample_without_replacement<R: Rng>(
    weights: &[u32],
    n_res: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut s = AResSampler::new(n_res);
    for &w in weights {
        s.offer(w, rng);
    }
    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_rng::SplitMix64;

    #[test]
    fn selects_exactly_nres_when_enough_items() {
        let mut rng = SplitMix64::new(1);
        let weights = [1u32; 10];
        let sel = sample_without_replacement(&weights, 3, &mut rng);
        assert_eq!(sel.len(), 3);
        // Distinct, sorted, in range.
        assert!(sel.windows(2).all(|w| w[0] < w[1]));
        assert!(sel.iter().all(|&i| i < 10));
    }

    #[test]
    fn fewer_items_than_reservoir() {
        let mut rng = SplitMix64::new(2);
        let sel = sample_without_replacement(&[5, 7], 4, &mut rng);
        assert_eq!(sel, vec![0, 1]);
    }

    #[test]
    fn zero_weight_items_never_selected() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..200 {
            let sel = sample_without_replacement(&[0, 3, 0, 9], 2, &mut rng);
            assert_eq!(sel, vec![1, 3]);
        }
    }

    #[test]
    fn all_zero_weights_select_nothing() {
        let mut rng = SplitMix64::new(4);
        assert!(sample_without_replacement(&[0, 0, 0], 2, &mut rng).is_empty());
    }

    #[test]
    fn nres1_matches_weighted_distribution() {
        // With a single-slot reservoir, A-Res reduces to exactly the
        // weighted selection LightRW performs per step.
        let weights = [2u32, 3, 5];
        let mut rng = SplitMix64::new(5);
        let mut counts = [0u64; 3];
        for _ in 0..60_000 {
            let sel = sample_without_replacement(&weights, 1, &mut rng);
            counts[sel[0]] += 1;
        }
        crate::distribution::assert_counts_match(&counts, &weights);
    }

    #[test]
    fn heavier_items_selected_more_often_without_replacement() {
        let weights = [1u32, 1, 1, 1, 50];
        let mut rng = SplitMix64::new(6);
        let mut hot = 0usize;
        let n = 5_000;
        for _ in 0..n {
            if sample_without_replacement(&weights, 2, &mut rng).contains(&4) {
                hot += 1;
            }
        }
        // Item 4 dominates: it should appear in almost every 2-sample.
        assert!(hot as f64 / n as f64 > 0.95, "{hot}/{n}");
    }

    #[test]
    fn incremental_api_tracks_consumption() {
        let mut rng = SplitMix64::new(7);
        let mut s = AResSampler::new(2);
        for w in [1u32, 0, 2] {
            s.offer(w, &mut rng);
        }
        assert_eq!(s.consumed(), 3);
        let sel = s.finish();
        assert_eq!(sel, vec![0, 2]);
    }

    proptest::proptest! {
        #[test]
        fn selection_size_and_validity(
            weights in proptest::collection::vec(0u32..20, 0..50),
            n_res in 1usize..6,
            seed in 0u64..200,
        ) {
            let mut rng = SplitMix64::new(seed);
            let sel = sample_without_replacement(&weights, n_res, &mut rng);
            let nonzero = weights.iter().filter(|&&w| w > 0).count();
            proptest::prop_assert_eq!(sel.len(), n_res.min(nonzero));
            for &i in &sel {
                proptest::prop_assert!(weights[i] > 0);
            }
            // Distinct.
            let mut d = sel.clone();
            d.dedup();
            proptest::prop_assert_eq!(d.len(), sel.len());
        }
    }
}
