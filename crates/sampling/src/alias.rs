//! Alias-method sampling (Walker 1977, Vose 1991).
//!
//! The other classic "initialization + generation" sampler the paper cites
//! (§2.2). Initialization builds a two-column table in O(n); generation is
//! O(1): pick a column uniformly, then choose between the resident and the
//! alias by a biased coin. Like the inverse-transform table, the alias
//! table is O(n) intermediate state per step — the memory traffic LightRW's
//! streaming sampler avoids.

use crate::IndexSampler;
use lightrw_rng::Rng;

/// Vose alias table over integer weights.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Acceptance threshold per slot, as a probability in [0,1].
    prob: Vec<f64>,
    /// Alias category per slot.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from integer weights. Returns `None` if all weights are zero.
    pub fn build(weights: &[u32]) -> Option<Self> {
        let mut scratch = AliasScratch::new();
        if !scratch.rebuild(weights.len(), |i| weights[i]) {
            return None;
        }
        Some(Self {
            prob: scratch.prob,
            alias: scratch.alias,
        })
    }
}

/// Reusable Vose build state: rebuilds an alias table in place, so engines
/// that sample through the alias method once per walk step do no per-step
/// heap allocation in steady state (DESIGN.md §5). Sampling is
/// draw-for-draw identical to [`AliasTable`] — `build` above delegates
/// here, so there is exactly one Vose implementation.
#[derive(Debug, Clone, Default)]
pub struct AliasScratch {
    scaled: Vec<f64>,
    prob: Vec<f64>,
    alias: Vec<u32>,
    small: Vec<usize>,
    large: Vec<usize>,
}

impl AliasScratch {
    /// Empty scratch; buffers grow to the largest candidate set seen.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size all buffers for candidate sets up to `n` (worker setup).
    pub fn reserve(&mut self, n: usize) {
        self.scaled.reserve(n);
        self.prob.reserve(n);
        self.alias.reserve(n);
        self.small.reserve(n);
        self.large.reserve(n);
    }

    /// Rebuild the table over weights `w(0), …, w(len-1)`. Returns `false`
    /// when the total weight is zero (dead end; table left unusable).
    pub fn rebuild(&mut self, len: usize, w: impl Fn(usize) -> u32) -> bool {
        let total: u64 = (0..len).map(|i| w(i) as u64).sum();
        if total == 0 {
            return false;
        }
        // Scaled probabilities: p_i * n.
        let scale = len as f64 / total as f64;
        self.scaled.clear();
        self.scaled.extend((0..len).map(|i| w(i) as f64 * scale));
        self.prob.clear();
        self.prob.resize(len, 0.0);
        self.alias.clear();
        self.alias.resize(len, 0);

        let (scaled, prob, alias) = (&mut self.scaled, &mut self.prob, &mut self.alias);
        self.small.clear();
        self.large.clear();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                self.small.push(i);
            } else {
                self.large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (self.small.last(), self.large.last()) {
            self.small.pop();
            self.large.pop();
            prob[s] = scaled[s];
            alias[s] = l as u32;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                self.small.push(l);
            } else {
                self.large.push(l);
            }
        }
        // Numerical leftovers: remaining slots are (up to fp error) exactly 1.
        for &l in &self.large {
            prob[l] = 1.0;
        }
        for &s in &self.small {
            prob[s] = 1.0;
        }
        true
    }

    /// Draw one category from the last [`AliasScratch::rebuild`] table.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let slot = rng.gen_index(self.prob.len());
        if rng.next_f64() < self.prob[slot] {
            slot
        } else {
            self.alias[slot] as usize
        }
    }
}

impl IndexSampler for AliasTable {
    #[inline]
    fn len(&self) -> usize {
        self.prob.len()
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let slot = rng.gen_index(self.prob.len());
        if rng.next_f64() < self.prob[slot] {
            slot
        } else {
            self.alias[slot] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::assert_matches_weights;
    use lightrw_rng::SplitMix64;

    #[test]
    fn all_zero_weights_is_none() {
        assert!(AliasTable::build(&[0, 0]).is_none());
        assert!(AliasTable::build(&[]).is_none());
    }

    #[test]
    fn uniform_weights_give_prob_one_slots() {
        let t = AliasTable::build(&[7, 7, 7, 7]).unwrap();
        for &p in &t.prob {
            assert!((p - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn single_category() {
        let t = AliasTable::build(&[3]).unwrap();
        let mut rng = SplitMix64::new(1);
        for _ in 0..50 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let weights = [4u32, 0, 9, 0];
        let t = AliasTable::build(&weights).unwrap();
        let mut rng = SplitMix64::new(2);
        for _ in 0..5000 {
            let i = t.sample(&mut rng);
            assert!(weights[i] > 0, "sampled zero-weight category {i}");
        }
    }

    #[test]
    fn distribution_matches_weights() {
        let weights = [5u32, 1, 1, 8, 3, 12];
        let t = AliasTable::build(&weights).unwrap();
        let mut rng = SplitMix64::new(3);
        assert_matches_weights(&weights, 200_000, |r| t.sample(r), &mut rng);
    }

    #[test]
    fn heavily_skewed_distribution() {
        let weights = [1u32, 1000];
        let t = AliasTable::build(&weights).unwrap();
        let mut rng = SplitMix64::new(4);
        let n = 100_000;
        let hits0 = (0..n).filter(|_| t.sample(&mut rng) == 0).count();
        let expect = n as f64 / 1001.0;
        // within 4 sigma of binomial
        let sigma = (n as f64 * (1.0 / 1001.0) * (1000.0 / 1001.0)).sqrt();
        assert!(
            (hits0 as f64 - expect).abs() < 4.0 * sigma,
            "hits0={hits0}, expect={expect}"
        );
    }

    #[test]
    fn scratch_rebuild_matches_fresh_build() {
        // Same weights through the reusable scratch and the one-shot build
        // must give draw-for-draw identical samples.
        let sets: [&[u32]; 4] = [&[3, 1, 4, 1, 5], &[1; 8], &[0, 7, 0, 2], &[10]];
        let mut scratch = AliasScratch::new();
        for weights in sets {
            assert!(scratch.rebuild(weights.len(), |i| weights[i]));
            let table = AliasTable::build(weights).unwrap();
            let mut a = SplitMix64::new(77);
            let mut b = SplitMix64::new(77);
            for _ in 0..500 {
                assert_eq!(scratch.sample(&mut a), table.sample(&mut b));
            }
        }
        assert!(!scratch.rebuild(3, |_| 0));
    }

    #[test]
    fn table_is_complete_partition() {
        // Every slot must have prob in [0,1] and a valid alias.
        let t = AliasTable::build(&[3, 1, 4, 1, 5, 9, 2, 6]).unwrap();
        for (i, (&p, &a)) in t.prob.iter().zip(&t.alias).enumerate() {
            assert!((0.0..=1.0).contains(&p), "slot {i} prob {p}");
            assert!((a as usize) < t.len());
        }
    }
}
