//! Alias-method sampling (Walker 1977, Vose 1991).
//!
//! The other classic "initialization + generation" sampler the paper cites
//! (§2.2). Initialization builds a two-column table in O(n); generation is
//! O(1): pick a column uniformly, then choose between the resident and the
//! alias by a biased coin. Like the inverse-transform table, the alias
//! table is O(n) intermediate state per step — the memory traffic LightRW's
//! streaming sampler avoids.

use crate::IndexSampler;
use lightrw_rng::Rng;

/// Vose alias table over integer weights.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Acceptance threshold per slot, as a probability in [0,1].
    prob: Vec<f64>,
    /// Alias category per slot.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from integer weights. Returns `None` if all weights are zero.
    pub fn build(weights: &[u32]) -> Option<Self> {
        let n = weights.len();
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        if total == 0 {
            return None;
        }
        // Scaled probabilities: p_i * n.
        let scale = n as f64 / total as f64;
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w as f64 * scale).collect();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];

        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = scaled[s];
            alias[s] = l as u32;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: remaining slots are (up to fp error) exactly 1.
        for &l in &large {
            prob[l] = 1.0;
        }
        for &s in &small {
            prob[s] = 1.0;
        }
        Some(Self { prob, alias })
    }
}

impl IndexSampler for AliasTable {
    #[inline]
    fn len(&self) -> usize {
        self.prob.len()
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let slot = rng.gen_index(self.prob.len());
        if rng.next_f64() < self.prob[slot] {
            slot
        } else {
            self.alias[slot] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::assert_matches_weights;
    use lightrw_rng::SplitMix64;

    #[test]
    fn all_zero_weights_is_none() {
        assert!(AliasTable::build(&[0, 0]).is_none());
        assert!(AliasTable::build(&[]).is_none());
    }

    #[test]
    fn uniform_weights_give_prob_one_slots() {
        let t = AliasTable::build(&[7, 7, 7, 7]).unwrap();
        for &p in &t.prob {
            assert!((p - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn single_category() {
        let t = AliasTable::build(&[3]).unwrap();
        let mut rng = SplitMix64::new(1);
        for _ in 0..50 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let weights = [4u32, 0, 9, 0];
        let t = AliasTable::build(&weights).unwrap();
        let mut rng = SplitMix64::new(2);
        for _ in 0..5000 {
            let i = t.sample(&mut rng);
            assert!(weights[i] > 0, "sampled zero-weight category {i}");
        }
    }

    #[test]
    fn distribution_matches_weights() {
        let weights = [5u32, 1, 1, 8, 3, 12];
        let t = AliasTable::build(&weights).unwrap();
        let mut rng = SplitMix64::new(3);
        assert_matches_weights(&weights, 200_000, |r| t.sample(r), &mut rng);
    }

    #[test]
    fn heavily_skewed_distribution() {
        let weights = [1u32, 1000];
        let t = AliasTable::build(&weights).unwrap();
        let mut rng = SplitMix64::new(4);
        let n = 100_000;
        let hits0 = (0..n).filter(|_| t.sample(&mut rng) == 0).count();
        let expect = n as f64 / 1001.0;
        // within 4 sigma of binomial
        let sigma = (n as f64 * (1.0 / 1001.0) * (1000.0 / 1001.0)).sqrt();
        assert!(
            (hits0 as f64 - expect).abs() < 4.0 * sigma,
            "hits0={hits0}, expect={expect}"
        );
    }

    #[test]
    fn table_is_complete_partition() {
        // Every slot must have prob in [0,1] and a valid alias.
        let t = AliasTable::build(&[3, 1, 4, 1, 5, 9, 2, 6]).unwrap();
        for (i, (&p, &a)) in t.prob.iter().zip(&t.alias).enumerate() {
            assert!((0.0..=1.0).contains(&p), "slot {i} prob {p}");
            assert!((a as usize) < t.len());
        }
    }
}
