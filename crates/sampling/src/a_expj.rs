//! A-ExpJ: Efraimidis–Espirakis weighted reservoir sampling *with
//! exponential jumps* — the skip-ahead variant of [`crate::a_res`].
//!
//! A-Res draws one uniform per stream item. A-ExpJ instead draws the
//! *amount of weight* the current reservoir survives (an exponential in
//! the key domain) and jumps over every item inside that span, touching
//! the RNG only `O(k log(n/k))` times in expectation. On the huge
//! adjacency rows an out-of-core graph serves via the prefix cache, the
//! jump becomes a binary search over the cumulative weights: expected
//! `O(log d)` work per draw with *no* per-step table build — the same
//! "initialization-free" property the paper prizes in WRS (§3.2), but
//! sublinear in degree.
//!
//! Three single-sample (`n_res = 1`) entry points mirror the walker's
//! hot-path shapes and are **bit-identical** to one another on the same
//! weight sequence (same selections, same RNG consumption):
//!
//! * [`select_index_with`] — streaming weights, linear scan between jumps;
//! * [`select_prefix`] — jumps by binary search over an inclusive
//!   cumulative-weight array (promoted by `shift`, matching the walker's
//!   fixed-point static weights);
//! * [`select_uniform`] — constant weights, jumps by implicit binary
//!   search over the index range.
//!
//! The identity holds because the jump target is compared against exact
//! integer cumulative sums converted to `f64`: the scan's running `u64`
//! total at item `i` equals `cum[i] << shift` exactly (power-of-two
//! promotion cannot round), and `u64 → f64` conversion is monotone, so a
//! binary search over converted cumulative values finds precisely the
//! scan's first crossing. Zero-weight items never consume randomness in
//! either form.
//!
//! [`AExpJSampler`] is the general `n_res ≥ 1` reservoir, offered the
//! stream item by item like [`crate::AResSampler`] and validated against
//! it distributionally.

use lightrw_rng::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Floor uniforms away from zero so `ln` stays finite.
#[inline]
fn positive_uniform<R: Rng>(rng: &mut R) -> f64 {
    rng.next_f64().max(f64::MIN_POSITIVE)
}

/// Draw the log-key for a first-seen item: `ln(u) / w`.
#[inline]
fn fresh_ln_key<R: Rng>(rng: &mut R, weight: f64) -> f64 {
    positive_uniform(rng).ln() / weight
}

/// Draw the replacement log-key at a crossing item of weight `w`:
/// uniform in `(t, 1)` with `t = key^w`, i.e. conditioned to beat the
/// incumbent.
#[inline]
fn replacement_ln_key<R: Rng>(rng: &mut R, ln_key: f64, weight: f64) -> f64 {
    let t = (ln_key * weight).exp();
    let u = (t + (1.0 - t) * rng.next_f64()).max(f64::MIN_POSITIVE);
    u.ln() / weight
}

/// The jump target: cumulative weight at which the incumbent's key is
/// overtaken. Strictly greater than `cum` (both logs are negative).
#[inline]
fn jump_target<R: Rng>(rng: &mut R, cum: f64, ln_key: f64) -> f64 {
    cum + positive_uniform(rng).ln() / ln_key
}

/// Single-sample A-ExpJ over streamed weights: an index drawn with
/// probability `w(i) / Σw`, or `None` when every weight is zero.
/// Evaluates every weight once (the cumulative total is needed to place
/// jumps) but touches the RNG only at jump crossings.
pub fn select_index_with<R: Rng>(
    rng: &mut R,
    len: usize,
    w: impl Fn(usize) -> u32,
) -> Option<usize> {
    let mut i = 0usize;
    let first_w = loop {
        if i == len {
            return None;
        }
        let wi = w(i);
        if wi > 0 {
            break wi;
        }
        i += 1;
    };
    let mut cum = first_w as u64;
    let mut ln_key = fresh_ln_key(rng, first_w as f64);
    let mut selected = i;
    let mut target = jump_target(rng, cum as f64, ln_key);
    i += 1;
    while i < len {
        let wi = w(i);
        if wi == 0 {
            i += 1;
            continue;
        }
        cum += wi as u64;
        if (cum as f64) > target {
            ln_key = replacement_ln_key(rng, ln_key, wi as f64);
            selected = i;
            target = jump_target(rng, cum as f64, ln_key);
        }
        i += 1;
    }
    Some(selected)
}

/// Single-sample A-ExpJ over an inclusive cumulative-weight array, each
/// weight promoted by `shift` bits (the walker's fixed-point promotion).
/// Jumps advance by binary search, so expected cost is `O(log len)` —
/// this is the huge-row fast path. Bit-identical to
/// [`select_index_with`] over `(cum[i] - cum[i-1]) << shift`.
pub fn select_prefix<R: Rng>(rng: &mut R, cumulative: &[u64], shift: u32) -> Option<usize> {
    match cumulative.last() {
        None | Some(0) => return None,
        Some(_) => {}
    }
    // First positive-weight item: the first nonzero cumulative value.
    let mut selected = cumulative.partition_point(|&c| c == 0);
    // Its predecessor's cumulative is zero, so its weight IS cum[selected].
    let mut ln_key = fresh_ln_key(rng, (cumulative[selected] << shift) as f64);
    loop {
        let target = jump_target(rng, (cumulative[selected] << shift) as f64, ln_key);
        // First j > selected whose promoted cumulative exceeds the target.
        // Zero-weight items share their predecessor's cumulative, so the
        // search can only land on a positive-weight item (the target is
        // strictly above the incumbent's cumulative).
        let rest = &cumulative[selected + 1..];
        let off = rest.partition_point(|&c| ((c << shift) as f64) <= target);
        if off == rest.len() {
            return Some(selected);
        }
        let j = selected + 1 + off;
        let wj = ((cumulative[j] - cumulative[j - 1]) << shift) as f64;
        ln_key = replacement_ln_key(rng, ln_key, wj);
        selected = j;
    }
}

/// Single-sample A-ExpJ over `len` equal weights: jumps advance by an
/// implicit binary search over the index range (cumulative at `j` is
/// `(j+1)·weight`), expected `O(log len)`. Bit-identical to
/// [`select_index_with`] with a constant closure.
pub fn select_uniform<R: Rng>(rng: &mut R, len: usize, weight: u32) -> Option<usize> {
    if len == 0 || weight == 0 {
        return None;
    }
    let cum_at = |j: usize| ((j as u64 + 1) * weight as u64) as f64;
    let mut selected = 0usize;
    let mut ln_key = fresh_ln_key(rng, weight as f64);
    loop {
        let target = jump_target(rng, cum_at(selected), ln_key);
        // partition_point over j in (selected, len): first cum_at(j) > target.
        let (mut lo, mut hi) = (selected + 1, len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if cum_at(mid) <= target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == len {
            return Some(selected);
        }
        ln_key = replacement_ln_key(rng, ln_key, weight as f64);
        selected = lo;
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Keyed {
    /// `ln(key)`; larger (closer to zero) is better.
    ln_key: f64,
    index: usize,
}

// Min-heap by ln_key (BinaryHeap is a max-heap, so invert the ordering).
impl Eq for Keyed {}
impl PartialOrd for Keyed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Keyed {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .ln_key
            .partial_cmp(&self.ln_key)
            .expect("A-ExpJ keys are never NaN")
            .then_with(|| other.index.cmp(&self.index))
    }
}

/// General `n_res ≥ 1` A-ExpJ reservoir, API-compatible with
/// [`crate::AResSampler`]: same offers, same finish, the same
/// without-replacement distribution — but RNG draws only at jump
/// crossings once the reservoir is full.
#[derive(Debug, Clone)]
pub struct AExpJSampler {
    capacity: usize,
    heap: BinaryHeap<Keyed>,
    consumed: usize,
    /// Weight left to skip before the next threshold crossing
    /// (`None` until the reservoir fills).
    skip: Option<f64>,
}

impl AExpJSampler {
    /// Reservoir of `n_res` items (`n_res = 1` is LightRW's setting).
    pub fn new(n_res: usize) -> Self {
        assert!(n_res >= 1, "reservoir must hold at least one item");
        Self {
            capacity: n_res,
            heap: BinaryHeap::with_capacity(n_res + 1),
            consumed: 0,
            skip: None,
        }
    }

    fn draw_skip<R: Rng>(&mut self, rng: &mut R) {
        let worst = self.heap.peek().expect("full reservoir").ln_key;
        self.skip = Some(positive_uniform(rng).ln() / worst);
    }

    /// Offer the next stream item; zero-weight items are never selected
    /// and never consume randomness.
    pub fn offer<R: Rng>(&mut self, weight: u32, rng: &mut R) {
        let index = self.consumed;
        self.consumed += 1;
        if weight == 0 {
            return;
        }
        let w = weight as f64;
        if self.heap.len() < self.capacity {
            let ln_key = fresh_ln_key(rng, w);
            self.heap.push(Keyed { ln_key, index });
            if self.heap.len() == self.capacity {
                self.draw_skip(rng);
            }
            return;
        }
        let skip = self
            .skip
            .as_mut()
            .expect("skip drawn when reservoir filled");
        *skip -= w;
        if *skip <= 0.0 {
            let worst = self.heap.pop().expect("full reservoir").ln_key;
            let ln_key = replacement_ln_key(rng, worst, w);
            self.heap.push(Keyed { ln_key, index });
            self.draw_skip(rng);
        }
    }

    /// Items consumed so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Finish the pass: the selected stream indices, in stream order.
    pub fn finish(self) -> Vec<usize> {
        let mut out: Vec<usize> = self.heap.into_iter().map(|k| k.index).collect();
        out.sort_unstable();
        out
    }
}

/// Convenience: sample `n_res` distinct indices from `weights`.
pub fn sample_without_replacement<R: Rng>(
    weights: &[u32],
    n_res: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut s = AExpJSampler::new(n_res);
    for &w in weights {
        s.offer(w, rng);
    }
    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_rng::SplitMix64;

    const SHIFT: u32 = 16; // the walker's FX_FRAC_BITS promotion

    fn cumulative(weights: &[u32]) -> Vec<u64> {
        let mut acc = 0u64;
        weights
            .iter()
            .map(|&w| {
                acc += w as u64;
                acc
            })
            .collect()
    }

    #[test]
    fn streaming_matches_weighted_distribution() {
        let weights = [2u32, 3, 5, 0, 10];
        let mut rng = SplitMix64::new(11);
        let mut counts = [0u64; 5];
        for _ in 0..80_000 {
            let i = select_index_with(&mut rng, weights.len(), |i| weights[i]).unwrap();
            counts[i] += 1;
        }
        assert_eq!(counts[3], 0, "zero-weight item selected");
        let kept = [counts[0], counts[1], counts[2], counts[4]];
        crate::distribution::assert_counts_match(&kept, &[2, 3, 5, 10]);
    }

    #[test]
    fn prefix_variant_is_bit_identical_to_streaming() {
        // Promoted weights: streaming sees (diff << SHIFT), prefix sees the
        // raw cumulative array plus the shift. Same seed → same draws →
        // same picks, including RNG stream position afterwards.
        let raw: Vec<u32> = vec![3, 0, 1, 7, 0, 0, 2, 65535, 1, 4, 0, 9];
        let cum = cumulative(&raw);
        let mut a = SplitMix64::new(77);
        let mut b = SplitMix64::new(77);
        for _ in 0..5_000 {
            let s = select_index_with(&mut a, raw.len(), |i| raw[i] << SHIFT);
            let p = select_prefix(&mut b, &cum, SHIFT);
            assert_eq!(s, p);
            assert_eq!(a.next_u64(), b.next_u64(), "RNG streams diverged");
        }
    }

    #[test]
    fn uniform_variant_is_bit_identical_to_streaming() {
        for len in [1usize, 2, 7, 64, 1000] {
            let mut a = SplitMix64::new(5 + len as u64);
            let mut b = SplitMix64::new(5 + len as u64);
            for _ in 0..2_000 {
                let s = select_index_with(&mut a, len, |_| 1 << SHIFT);
                let u = select_uniform(&mut b, len, 1 << SHIFT);
                assert_eq!(s, u, "len={len}");
                assert_eq!(a.next_u64(), b.next_u64(), "RNG streams diverged");
            }
        }
    }

    #[test]
    fn uniform_is_actually_uniform() {
        let mut rng = SplitMix64::new(23);
        let mut counts = [0u64; 8];
        for _ in 0..80_000 {
            counts[select_uniform(&mut rng, 8, 1 << SHIFT).unwrap()] += 1;
        }
        crate::distribution::assert_counts_match(&counts, &[1u32; 8]);
    }

    #[test]
    fn dead_ends_yield_none_without_consuming_rng() {
        let mut rng = SplitMix64::new(3);
        let before = rng.clone().next_u64();
        assert_eq!(select_index_with(&mut rng, 4, |_| 0), None);
        assert_eq!(select_index_with(&mut rng, 0, |_| 1), None);
        assert_eq!(select_prefix(&mut rng, &[0, 0, 0], SHIFT), None);
        assert_eq!(select_prefix(&mut rng, &[], SHIFT), None);
        assert_eq!(select_uniform(&mut rng, 0, 5), None);
        assert_eq!(select_uniform(&mut rng, 5, 0), None);
        assert_eq!(rng.next_u64(), before, "dead ends must not draw");
    }

    #[test]
    fn single_positive_item_is_always_selected() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..200 {
            assert_eq!(
                select_index_with(&mut rng, 5, |i| if i == 3 { 7 } else { 0 }),
                Some(3)
            );
        }
    }

    #[test]
    fn reservoir_matches_a_res_distribution() {
        // Same weights, same reservoir size: A-ExpJ and A-Res must agree
        // in distribution (they are the same sampler, differently drawn).
        let weights = [1u32, 4, 2, 8, 1];
        let n = 60_000;
        let mut expj_counts = [0u64; 5];
        let mut ares_counts = [0u64; 5];
        let mut rng = SplitMix64::new(41);
        for _ in 0..n {
            for &i in &sample_without_replacement(&weights, 2, &mut rng) {
                expj_counts[i] += 1;
            }
            for &i in &crate::a_res::sample_without_replacement(&weights, 2, &mut rng) {
                ares_counts[i] += 1;
            }
        }
        // Compare the two empirical inclusion distributions against each
        // other via a two-sample chi-square on the counts.
        let exp: Vec<f64> = ares_counts.iter().map(|&c| c as f64).collect();
        let chi2 = lightrw_rng::stats::chi_square_counts(&expj_counts, &exp);
        let crit = lightrw_rng::stats::chi_square_crit_999(4) * 1.2;
        assert!(
            chi2 < crit,
            "chi2={chi2:.1} {expj_counts:?} vs {ares_counts:?}"
        );
    }

    #[test]
    fn nres1_reservoir_matches_weighted_distribution() {
        let weights = [2u32, 3, 5];
        let mut rng = SplitMix64::new(55);
        let mut counts = [0u64; 3];
        for _ in 0..60_000 {
            counts[sample_without_replacement(&weights, 1, &mut rng)[0]] += 1;
        }
        crate::distribution::assert_counts_match(&counts, &weights);
    }

    #[test]
    fn fewer_items_than_reservoir() {
        let mut rng = SplitMix64::new(2);
        assert_eq!(sample_without_replacement(&[5, 7], 4, &mut rng), vec![0, 1]);
    }

    #[test]
    fn all_zero_weights_select_nothing() {
        let mut rng = SplitMix64::new(4);
        assert!(sample_without_replacement(&[0, 0, 0], 2, &mut rng).is_empty());
    }

    proptest::proptest! {
        #[test]
        fn selection_size_and_validity(
            weights in proptest::collection::vec(0u32..20, 0..50),
            n_res in 1usize..6,
            seed in 0u64..200,
        ) {
            let mut rng = SplitMix64::new(seed);
            let sel = sample_without_replacement(&weights, n_res, &mut rng);
            let nonzero = weights.iter().filter(|&&w| w > 0).count();
            proptest::prop_assert_eq!(sel.len(), n_res.min(nonzero));
            for &i in &sel {
                proptest::prop_assert!(weights[i] > 0);
            }
            let mut d = sel.clone();
            d.dedup();
            proptest::prop_assert_eq!(d.len(), sel.len());
        }

        #[test]
        fn prefix_streaming_identity_holds_for_random_weights(
            weights in proptest::collection::vec(0u32..65536, 1..40),
            seed in 0u64..100,
        ) {
            let cum = cumulative(&weights);
            let mut a = SplitMix64::new(seed);
            let mut b = SplitMix64::new(seed);
            let s = select_index_with(&mut a, weights.len(), |i| weights[i] << SHIFT);
            let p = select_prefix(&mut b, &cum, SHIFT);
            proptest::prop_assert_eq!(s, p);
            proptest::prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
