//! Inverse transformation sampling.
//!
//! The method ThunderRW is configured with in the paper's comparison
//! (§6.1.4): the *initialization* stage materializes the inclusive prefix
//! sums of the weights (an O(n) table written to memory — this is exactly
//! the intermediate data LightRW's WRS eliminates), and the *generation*
//! stage binary-searches a uniform draw over the cumulative table.

use crate::IndexSampler;
use lightrw_rng::Rng;

/// Cumulative-weight table for inverse transformation sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InverseTransformTable {
    /// Inclusive prefix sums of the input weights.
    cumulative: Vec<u64>,
    total: u64,
}

impl InverseTransformTable {
    /// Build from integer weights. Returns `None` if all weights are zero
    /// (no valid category), mirroring a dead-end walk step.
    pub fn build(weights: &[u32]) -> Option<Self> {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0u64;
        for &w in weights {
            acc += w as u64;
            cumulative.push(acc);
        }
        if acc == 0 {
            return None;
        }
        Some(Self {
            cumulative,
            total: acc,
        })
    }

    /// Total weight mass.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The intermediate table size in bytes — the paper's Inefficiency 1
    /// counts these `O(|N(v)|)` memory accesses per step.
    #[inline]
    pub fn table_bytes(&self) -> u64 {
        (self.cumulative.len() * std::mem::size_of::<u64>()) as u64
    }
}

impl IndexSampler for InverseTransformTable {
    #[inline]
    fn len(&self) -> usize {
        self.cumulative.len()
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        // Uniform in [0, total): category i is chosen iff
        // cumulative[i-1] <= r < cumulative[i].
        let r = rng.gen_range(self.total);
        // partition_point returns the first index with cumulative > r.
        self.cumulative.partition_point(|&c| c <= r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::assert_matches_weights;
    use lightrw_rng::SplitMix64;

    #[test]
    fn all_zero_weights_is_none() {
        assert!(InverseTransformTable::build(&[0, 0, 0]).is_none());
        assert!(InverseTransformTable::build(&[]).is_none());
    }

    #[test]
    fn single_category_always_selected() {
        let t = InverseTransformTable::build(&[5]).unwrap();
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let t = InverseTransformTable::build(&[0, 3, 0, 7, 0]).unwrap();
        let mut rng = SplitMix64::new(2);
        for _ in 0..2000 {
            let i = t.sample(&mut rng);
            assert!(i == 1 || i == 3, "sampled zero-weight category {i}");
        }
    }

    #[test]
    fn distribution_matches_weights() {
        let weights = [1u32, 2, 3, 4, 10, 0, 20];
        let t = InverseTransformTable::build(&weights).unwrap();
        let mut rng = SplitMix64::new(3);
        assert_matches_weights(&weights, 200_000, |r| t.sample(r), &mut rng);
    }

    #[test]
    fn extreme_weight_ratio() {
        // One huge and one tiny weight; tiny one must still be reachable.
        let weights = [1u32, u32::MAX];
        let t = InverseTransformTable::build(&weights).unwrap();
        let mut rng = SplitMix64::new(4);
        let mut saw0 = 0u32;
        // P(index 0) = 1/(2^32); 2^20 draws almost surely miss it, but the
        // cumulative structure must still be sound.
        for _ in 0..1 << 16 {
            if t.sample(&mut rng) == 0 {
                saw0 += 1;
            }
        }
        assert!(saw0 <= 2);
    }

    #[test]
    fn table_bytes_counts_intermediate_data() {
        let t = InverseTransformTable::build(&[1, 1, 1, 1]).unwrap();
        assert_eq!(t.table_bytes(), 32);
        assert_eq!(t.total(), 4);
        assert_eq!(t.len(), 4);
    }
}
