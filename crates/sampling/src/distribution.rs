//! Goodness-of-fit helpers shared by all sampler tests.
//!
//! Every sampler in this crate claims to draw category `i` with probability
//! `w_i / Σw`. These helpers turn that claim into a chi-square test against
//! the weights, with the threshold from
//! [`lightrw_rng::stats::chi_square_crit_999`]. Seeds are fixed in tests,
//! so the assertions are deterministic (no flaky statistics).

use lightrw_rng::stats::{chi_square_counts, chi_square_crit_999};

/// Draw `n` samples from `f` and histogram them over `categories` bins.
pub fn counts_from(categories: usize, n: usize, mut f: impl FnMut() -> usize) -> Vec<u64> {
    let mut counts = vec![0u64; categories];
    for _ in 0..n {
        let i = f();
        assert!(i < categories, "sample {i} out of range {categories}");
        counts[i] += 1;
    }
    counts
}

/// Chi-square of observed counts vs integer weights.
pub fn chi_square_vs_weights(counts: &[u64], weights: &[u32]) -> f64 {
    let probs: Vec<f64> = weights.iter().map(|&w| w as f64).collect();
    chi_square_counts(counts, &probs)
}

/// Assert that observed counts match the weight-proportional distribution
/// at ~99.9% confidence (dof = #non-zero categories - 1).
pub fn assert_counts_match(counts: &[u64], weights: &[u32]) {
    let nonzero = weights.iter().filter(|&&w| w > 0).count();
    assert!(nonzero >= 1, "need at least one non-zero weight");
    let chi2 = chi_square_vs_weights(counts, weights);
    let crit = if nonzero == 1 {
        1e-9 // single category: statistic must be exactly 0
    } else {
        chi_square_crit_999(nonzero - 1) * 1.15 // margin over the approximation
    };
    assert!(
        chi2 <= crit,
        "distribution mismatch: chi2={chi2:.2} crit={crit:.2} counts={counts:?} weights={weights:?}"
    );
}

/// Convenience wrapper: sample `n` times with `sampler` and assert fit.
pub fn assert_matches_weights<R>(
    weights: &[u32],
    n: usize,
    mut sampler: impl FnMut(&mut R) -> usize,
    rng: &mut R,
) {
    let counts = counts_from(weights.len(), n, || sampler(rng));
    assert_counts_match(&counts, weights);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_proportions_pass() {
        let weights = [1u32, 2, 3];
        let counts = [1000u64, 2000, 3000];
        assert_counts_match(&counts, &weights);
    }

    #[test]
    #[should_panic(expected = "distribution mismatch")]
    fn gross_mismatch_fails() {
        let weights = [1u32, 1];
        let counts = [10_000u64, 100];
        assert_counts_match(&counts, &weights);
    }

    #[test]
    #[should_panic(expected = "zero-probability")]
    fn zero_weight_category_with_samples_fails() {
        let weights = [1u32, 0];
        let counts = [100u64, 5];
        assert_counts_match(&counts, &weights);
    }

    #[test]
    fn counts_from_histograms_correctly() {
        let mut i = 0usize;
        let counts = counts_from(3, 9, || {
            let v = i % 3;
            i += 1;
            v
        });
        assert_eq!(counts, vec![3, 3, 3]);
    }
}
