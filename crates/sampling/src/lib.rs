//! # lightrw-sampling — weighted sampling methods for dynamic random walks
//!
//! GDRW engines must draw one neighbor per step with probability
//! proportional to a dynamically computed weight. This crate implements
//! every sampling method the paper discusses, so engines and benches can
//! swap them:
//!
//! | Method | Paper role | Build | Draw | Barrier? |
//! |---|---|---|---|---|
//! | [`InverseTransformTable`] | ThunderRW's recommended default (§6.1.4) | O(n) | O(log n) | yes (init/gen) |
//! | [`AliasTable`] | classic alternative (§2.2) | O(n) | O(1) | yes (init/gen) |
//! | [`reservoir`] (sequential WRS) | single-pass sampler (§3.2) | — | O(n) stream | no |
//! | [`ParallelWrs`] | **the contribution**: k items/cycle (§4, Alg. 4.1) | — | O(n/k + log k) | no |
//! | [`rejection`] | KnightKing-style envelope accept/reject (related work) | — | expected O(log n) | no |
//! | [`a_expj`] | exponential-jump WRS for huge rows (§3.2 + out-of-core) | — | expected O(log n) over a prefix | no |
//!
//! The parallel WRS implementation follows the hardware exactly:
//! a per-batch prefix sum (Eq. 5 decomposition) computed with a
//! Kogge–Stone network model ([`prefix`]), the division-free integer
//! acceptance test of Eq. 8, latest-index candidate selection via a
//! comparator tree, and one fresh 32-bit uniform per lane per batch from a
//! [`lightrw_rng::StreamBank`].
//!
//! All samplers are exercised against each other by distribution
//! goodness-of-fit tests (see [`distribution`]); they must agree because
//! the paper's Fig. 14 compares engines built on different samplers.
//!
//! For the engines' allocation-free hot path (DESIGN.md §5), the crate
//! also provides reusable-scratch variants: [`AliasScratch`] rebuilds a
//! Vose table in place, and [`ParallelWrs::select_index_with`] consumes a
//! weight *closure* lane by lane so callers never materialize a weight
//! vector — both draw-for-draw identical to their one-shot counterparts.
//!
//! ```
//! use lightrw_sampling::ParallelWrs;
//!
//! // k = 4 lanes, as if the hardware consumed 4 weighted items per cycle.
//! let mut wrs = ParallelWrs::new(7, 4);
//! let items = [10u32, 20, 30, 40];
//! // Only one item has nonzero weight, so it must be the sample.
//! assert_eq!(wrs.select(&items, &[0, 0, 5, 0]), Some(30));
//! // Zero total weight means nothing can be drawn.
//! assert_eq!(wrs.select(&items, &[0, 0, 0, 0]), None);
//! ```

pub mod a_expj;
pub mod a_res;
pub mod alias;
pub mod distribution;
pub mod inverse_transform;
pub mod parallel_wrs;
pub mod prefix;
pub mod rejection;
pub mod reservoir;

pub use a_expj::AExpJSampler;
pub use a_res::AResSampler;
pub use alias::{AliasScratch, AliasTable};
pub use inverse_transform::InverseTransformTable;
pub use parallel_wrs::{ParallelWrs, WrsState};

/// A table-based sampler over categories `0..len` (built once, drawn many
/// times) — the "initialization + generation" shape the paper contrasts
/// WRS against.
pub trait IndexSampler {
    /// Number of categories.
    fn len(&self) -> usize;

    /// True if there are no categories.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Draw one category index with probability proportional to its weight.
    fn sample<R: lightrw_rng::Rng>(&self, rng: &mut R) -> usize;
}
