//! Prefix-sum building blocks for the parallel WRS sampler.
//!
//! The Weight Accumulator of the WRS Sampler (paper Fig. 4, step (a))
//! computes an inclusive prefix sum of the k weights received each cycle
//! with a log-depth adder network. [`kogge_stone_inclusive`] models that
//! network faithfully (same dataflow, O(k log k) adds, log2(k) levels) and
//! is tested for exact equality against the trivial sequential scan —
//! which is the software equivalence proof of Eq. 5's decomposition.

/// Sequential inclusive prefix sum into `out` (reference implementation).
pub fn sequential_inclusive(xs: &[u32], out: &mut Vec<u64>) {
    out.clear();
    let mut acc = 0u64;
    for &x in xs {
        acc += x as u64;
        out.push(acc);
    }
}

/// Kogge–Stone inclusive prefix sum, modelling the hardware adder network:
/// at level `d`, lane `j` adds lane `j - 2^d`'s value. Returns the number
/// of adder levels used (the `O(log k)` term in the paper's complexity
/// claim for Algorithm 4.1).
pub fn kogge_stone_inclusive(xs: &[u32], out: &mut Vec<u64>) -> u32 {
    out.clear();
    out.extend(xs.iter().map(|&x| x as u64));
    let n = out.len();
    if n <= 1 {
        return 0;
    }
    let mut levels = 0;
    let mut dist = 1;
    while dist < n {
        // The hardware updates all lanes in one cycle; iterate from the top
        // so lane j reads lane j-dist's *previous-level* value.
        for j in (dist..n).rev() {
            out[j] += out[j - dist];
        }
        dist <<= 1;
        levels += 1;
    }
    levels
}

/// Batch total (the value added to the running `w_sum` after each batch,
/// Algorithm 4.1 line 14). Equal to the last inclusive prefix.
#[inline]
pub fn batch_total(prefix: &[u64]) -> u64 {
    prefix.last().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_rng::{Rng, SplitMix64};

    #[test]
    fn empty_and_singleton() {
        let mut out = Vec::new();
        assert_eq!(kogge_stone_inclusive(&[], &mut out), 0);
        assert!(out.is_empty());
        assert_eq!(kogge_stone_inclusive(&[42], &mut out), 0);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn matches_sequential_on_fixed_cases() {
        let cases: Vec<Vec<u32>> = vec![
            vec![1, 2, 3, 4],
            vec![0, 0, 0],
            vec![5],
            vec![u32::MAX, u32::MAX, u32::MAX],
            (0..37).collect(),
        ];
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for case in cases {
            sequential_inclusive(&case, &mut a);
            kogge_stone_inclusive(&case, &mut b);
            assert_eq!(a, b, "case {case:?}");
        }
    }

    #[test]
    fn level_count_is_logarithmic() {
        let mut out = Vec::new();
        assert_eq!(kogge_stone_inclusive(&[1; 2], &mut out), 1);
        assert_eq!(kogge_stone_inclusive(&[1; 4], &mut out), 2);
        assert_eq!(kogge_stone_inclusive(&[1; 8], &mut out), 3);
        assert_eq!(kogge_stone_inclusive(&[1; 16], &mut out), 4);
        assert_eq!(kogge_stone_inclusive(&[1; 5], &mut out), 3); // ceil(log2 5)
    }

    #[test]
    fn eq5_decomposition_holds() {
        // {sum_{m=1}^{i+j} w}_j == w_sum_i + prefix({w_{i+1..i+k}})_j —
        // the identity that makes batch-local prefix sums sufficient.
        let mut rng = SplitMix64::new(9);
        let all: Vec<u32> = (0..64).map(|_| rng.next_u32() >> 16).collect();
        let (mut full, mut chunk) = (Vec::new(), Vec::new());
        sequential_inclusive(&all, &mut full);
        let k = 8;
        let mut w_sum = 0u64;
        for (ci, batch) in all.chunks(k).enumerate() {
            kogge_stone_inclusive(batch, &mut chunk);
            for (j, &p) in chunk.iter().enumerate() {
                assert_eq!(w_sum + p, full[ci * k + j]);
            }
            w_sum += batch_total(&chunk);
        }
        assert_eq!(w_sum, *full.last().unwrap());
    }

    proptest::proptest! {
        #[test]
        fn kogge_stone_equals_sequential(xs in proptest::collection::vec(0u32..=u32::MAX, 0..130)) {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            sequential_inclusive(&xs, &mut a);
            kogge_stone_inclusive(&xs, &mut b);
            proptest::prop_assert_eq!(a, b);
        }

        #[test]
        fn prefix_is_monotone(xs in proptest::collection::vec(0u32..1000, 1..64)) {
            let mut out = Vec::new();
            kogge_stone_inclusive(&xs, &mut out);
            for w in out.windows(2) {
                proptest::prop_assert!(w[0] <= w[1]);
            }
        }
    }
}
