//! Rejection sampling against a per-candidate envelope (KnightKing-style).
//!
//! Second-order weight rules (Node2Vec's Eq. 2) force every streaming
//! sampler to evaluate `F` for all `deg(a_t)` candidates per step. When the
//! rule is bounded by a *static envelope* — `F(i) ≤ w_static(i) ·
//! max_weight` for every candidate `i` — the step can instead run an
//! accept/reject loop: propose a candidate with probability proportional
//! to its static weight (one binary search over the CSR prefix cache),
//! then accept with probability `F(i) / envelope(i)`. Each round evaluates
//! `F` for exactly one candidate, so the expected cost per step is
//! O(log deg / acceptance-rate) instead of O(deg) — the KnightKing
//! observation that makes second-order walks degree-independent.
//!
//! # RNG-stream contract
//!
//! Every round consumes exactly **two** draws from the scalar stream, in
//! this order: one [`Rng::gen_range`]`(total)` for the proposal, one
//! [`Rng::next_u64`] for the acceptance test. The loop is bounded by
//! `max_rounds`; callers must finish an [`RejectionOutcome::Exhausted`]
//! step by other means (the engines fall back to one exact streaming
//! pass), so the per-step draw count is bounded. This stream is *not*
//! draw-compatible with any other sampling method — which is why engines
//! expose rejection sampling as an explicit opt-in validated by
//! goodness-of-fit, not by bit-equality (DESIGN.md §9).
//!
//! # Exactness
//!
//! The acceptance test is the division-free 64-bit comparison
//! `(u · envelope) >> 64 < F(i)` with `u` a 64-bit uniform, i.e. accept
//! with probability `ceil(F(i)·2^64 / envelope) / 2^64` — within `2^-64`
//! of the real ratio, far below any observable sampling effect. The
//! envelope is computed in 64-bit (`w_static · max_weight` cannot wrap),
//! so the proposal × acceptance product is proportional to `F(i)` even
//! when the app's own 32-bit weight saturates.

use lightrw_rng::Rng;

/// Default bound on accept/reject rounds per step. At the paper's Node2Vec
/// parameters (`p = 2, q = 0.5`) the acceptance probability is at least
/// `min(1/p, 1, 1/q) / max(1/p, 1, 1/q) = 1/4`, so 64 rounds fail with
/// probability under `(3/4)^64 ≈ 1e-8` — the exact-fallback path exists
/// for degenerate rows (e.g. all dynamic weights zero), not for luck.
pub const MAX_REJECTION_ROUNDS: u32 = 64;

/// Result of a bounded rejection-sampling attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectionOutcome {
    /// Candidate `i` was proposed and accepted.
    Accepted(usize),
    /// The static total is zero: nothing can ever be proposed.
    DeadEnd,
    /// `max_rounds` rounds all rejected; the caller must finish the step
    /// exactly (one streaming pass) to keep the walk unbiased.
    Exhausted,
}

/// Draw an index with probability proportional to `weight_of(i)`, where
/// `cumulative` holds the *inclusive* cumulative static weights of the
/// candidates (the CSR prefix-cache layout) and every dynamic weight is
/// bounded by its envelope: `weight_of(i) ≤ (cumulative[i] -
/// cumulative[i-1]) · max_weight` (64-bit product, no saturation).
///
/// `weight_of` is evaluated once per round, for the proposed candidate
/// only. Zero-static candidates are never proposed (their prefix span is
/// empty), matching the streaming samplers, which can never select a
/// candidate whose weight is 0 — and an envelope of 0 forces
/// `weight_of(i) == 0` anyway.
pub fn select_from_prefix<R: Rng>(
    rng: &mut R,
    cumulative: &[u64],
    max_weight: u32,
    max_rounds: u32,
    weight_of: impl Fn(usize) -> u32,
) -> RejectionOutcome {
    let total = match cumulative.last() {
        Some(&t) if t > 0 => t,
        _ => return RejectionOutcome::DeadEnd,
    };
    for _ in 0..max_rounds {
        // Proposal: one candidate, ∝ static weight (draw 1 of 2).
        let r = rng.gen_range(total);
        let i = cumulative.partition_point(|&c| c <= r);
        let w_static = cumulative[i] - if i == 0 { 0 } else { cumulative[i - 1] };
        let envelope = w_static * max_weight as u64;
        // Acceptance: dynamic weight vs envelope (draw 2 of 2).
        let u = rng.next_u64();
        if (u as u128 * envelope as u128) >> 64 < weight_of(i) as u128 {
            return RejectionOutcome::Accepted(i);
        }
    }
    RejectionOutcome::Exhausted
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_rng::stats::{chi_square_counts, chi_square_crit_999};
    use lightrw_rng::SplitMix64;

    /// Inclusive cumulative sums of `weights`.
    fn prefix(weights: &[u32]) -> Vec<u64> {
        let mut acc = 0u64;
        weights
            .iter()
            .map(|&w| {
                acc += w as u64;
                acc
            })
            .collect()
    }

    #[test]
    fn matches_the_target_distribution() {
        // Statics {1, 2, 3, 4} with a dynamic rule that scales candidate i
        // by multiplier m_i ∈ {4, 1, 2, 3} ≤ max_weight = 4: the sampled
        // law must be ∝ static · m.
        let statics = [1u32, 2, 3, 4];
        let mults = [4u32, 1, 2, 3];
        let cum = prefix(&statics);
        let mut rng = SplitMix64::new(42);
        let mut counts = [0u64; 4];
        for _ in 0..60_000 {
            match select_from_prefix(&mut rng, &cum, 4, MAX_REJECTION_ROUNDS, |i| {
                statics[i] * mults[i]
            }) {
                RejectionOutcome::Accepted(i) => counts[i] += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let expected: Vec<f64> = statics
            .iter()
            .zip(&mults)
            .map(|(&s, &m)| (s * m) as f64)
            .collect();
        let chi2 = chi_square_counts(&counts, &expected);
        assert!(chi2 < chi_square_crit_999(3), "chi2={chi2:.1} {counts:?}");
    }

    #[test]
    fn zero_static_candidates_are_never_proposed() {
        let cum = prefix(&[0, 5, 0, 5]);
        let mut rng = SplitMix64::new(7);
        for _ in 0..1_000 {
            match select_from_prefix(&mut rng, &cum, 1, MAX_REJECTION_ROUNDS, |i| {
                assert!(i == 1 || i == 3, "proposed zero-static candidate {i}");
                5
            }) {
                RejectionOutcome::Accepted(i) => assert!(i == 1 || i == 3),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn empty_and_zero_rows_are_dead_ends() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(
            select_from_prefix(&mut rng, &[], 1, 4, |_| 1),
            RejectionOutcome::DeadEnd
        );
        assert_eq!(
            select_from_prefix(&mut rng, &prefix(&[0, 0]), 1, 4, |_| 1),
            RejectionOutcome::DeadEnd
        );
    }

    #[test]
    fn all_zero_dynamic_weights_exhaust() {
        // Positive statics but a dynamic rule that vetoes everything
        // (MetaPath with no matching relation): every round rejects and
        // the bounded loop reports exhaustion for the caller's exact pass.
        let cum = prefix(&[3, 4]);
        let mut rng = SplitMix64::new(9);
        assert_eq!(
            select_from_prefix(&mut rng, &cum, 8, 16, |_| 0),
            RejectionOutcome::Exhausted
        );
    }

    #[test]
    fn consumes_exactly_two_draws_per_round() {
        // The documented stream contract: a first-round accept leaves the
        // RNG exactly two draws ahead of where it started.
        let cum = prefix(&[1, 1]);
        let mut rng = SplitMix64::new(3);
        let mut twin = SplitMix64::new(3);
        // max_weight 1 and full-weight candidates: accepts on round one.
        let got = select_from_prefix(&mut rng, &cum, 1, 4, |_| 1);
        assert!(matches!(got, RejectionOutcome::Accepted(_)));
        let _ = twin.gen_range(2);
        let _ = twin.next_u64();
        assert_eq!(rng.next_u64(), twin.next_u64());
    }

    #[test]
    fn saturated_app_weights_stay_proportional() {
        // Envelope arithmetic is 64-bit: statics {1, 2} with a huge
        // max_weight whose 32-bit dynamic weights saturate equal at
        // u32::MAX must sample ∝ the dynamic weights — i.e. *uniformly*,
        // because proposal ∝ static cancels against acceptance
        // w / (static · max_weight). A 32-bit (saturating) envelope would
        // instead leak the static bias through.
        let cum = prefix(&[1, 2]);
        let mut rng = SplitMix64::new(11);
        let mut counts = [0u64; 2];
        for _ in 0..40_000 {
            match select_from_prefix(&mut rng, &cum, u32::MAX, 1 << 14, |_| u32::MAX) {
                RejectionOutcome::Accepted(i) => counts[i] += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let chi2 = chi_square_counts(&counts, &[1.0, 1.0]);
        assert!(chi2 < chi_square_crit_999(1), "chi2={chi2:.1} {counts:?}");
    }
}
