//! Parallel weighted reservoir sampling — Algorithm 4.1, the paper's core
//! algorithmic contribution.
//!
//! Processes `k` (item, weight) pairs per batch ("per cycle" in hardware):
//!
//! 1. **Weight Accumulator**: an inclusive prefix sum of the batch weights
//!    via a Kogge–Stone network ([`crate::prefix`]), then `w_sum` (the
//!    running total of all previous batches) is added lane-wise — the
//!    Eq. 5 decomposition that breaks the serial dependency.
//! 2. **Selector**: each lane `j` performs the division-free acceptance
//!    test of Eq. 8 against its own independent 32-bit uniform (one
//!    [`StreamBank`] row per batch).
//! 3. **Comparator tree**: the *largest* accepted lane index wins the batch
//!    (the latest item in stream order), modelling Fig. 4 step (d).
//! 4. **Reservoir update + `w_sum` accumulation** (Alg. 4.1 lines 12–14).
//!
//! The resulting selection is distributed identically to sequential WRS:
//! lane `j`'s test uses the exact cumulative weight through its item, and
//! "largest accepted index per batch, later batches overwrite" reproduces
//! the sequential overwrite order.

use crate::prefix::{batch_total, kogge_stone_inclusive};
use crate::reservoir::accepts_integer;
use lightrw_rng::StreamBank;

/// Running state of one in-flight WRS selection (one walk step).
///
/// `O(1)` space — the paper's key contrast with the `O(|N(v)|)` tables of
/// initialization/generation samplers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrsState {
    /// Σ of all weights consumed so far (`w_sum^i` in Alg. 4.1).
    pub w_sum: u64,
    /// Currently selected item, if any lane has ever accepted.
    pub reservoir: Option<u32>,
    /// Items consumed (diagnostics).
    pub items_seen: u64,
    /// Batches consumed (== sampler cycles in hardware).
    pub batches: u64,
}

impl WrsState {
    /// Fresh state for a new selection.
    pub fn new() -> Self {
        Self {
            w_sum: 0,
            reservoir: None,
            items_seen: 0,
            batches: 0,
        }
    }
}

impl Default for WrsState {
    fn default() -> Self {
        Self::new()
    }
}

/// Pure batch-selection kernel: given the batch weights, the pre-batch
/// running total, the batch prefix sums and one uniform per lane, return
/// the winning lane index (largest accepted), if any.
///
/// Exposed for direct unit testing of the comparator-tree semantics.
#[inline]
pub fn batch_candidate(
    weights: &[u32],
    w_sum_before: u64,
    prefix: &[u64],
    row: &[u32],
) -> Option<usize> {
    debug_assert_eq!(weights.len(), prefix.len());
    debug_assert!(row.len() >= weights.len());
    let mut candidate = None;
    for j in 0..weights.len() {
        let cum = w_sum_before + prefix[j];
        if accepts_integer(weights[j], cum, row[j]) {
            candidate = Some(j); // ascending scan ⇒ max index wins
        }
    }
    candidate
}

/// The k-lane parallel WRS sampler.
///
/// Owns the RNG bank and scratch buffers; reusable across selections (the
/// hardware instance is likewise shared by all steps flowing through the
/// pipeline).
#[derive(Debug, Clone)]
pub struct ParallelWrs {
    bank: StreamBank,
    prefix: Vec<u64>,
    row: Vec<u32>,
    /// Reusable lane buffers for the index-streaming entry points, so a
    /// selection allocates nothing in steady state.
    idx_buf: Vec<u32>,
    wbuf: Vec<u32>,
}

impl ParallelWrs {
    /// Create a sampler with parallelism degree `k` (lanes per batch).
    pub fn new(seed: u64, k: usize) -> Self {
        assert!(k >= 1, "parallelism degree must be >= 1");
        Self {
            bank: StreamBank::new(seed, k),
            prefix: Vec::with_capacity(k),
            row: vec![0; k],
            idx_buf: Vec::with_capacity(k),
            wbuf: Vec::with_capacity(k),
        }
    }

    /// Degree of parallelism.
    #[inline]
    pub fn k(&self) -> usize {
        self.bank.k()
    }

    /// RNG rows consumed so far (one per batch; hardware cycles).
    #[inline]
    pub fn rows_consumed(&self) -> u64 {
        self.bank.rows_generated()
    }

    /// Capture the bank's stream position for hand-off serialization
    /// (see [`StreamBank::stream_state`]).
    #[inline]
    pub fn stream_state(&self) -> (u64, u64) {
        self.bank.stream_state()
    }

    /// Resume a captured stream position on a sampler built from the same
    /// seed and `k` (see [`StreamBank::restore_stream`]).
    #[inline]
    pub fn restore_stream(&mut self, state: u64, rows: u64) {
        self.bank.restore_stream(state, rows);
    }

    /// Draw one 32-bit uniform from lane 0 of the bank — the walk-program
    /// *restart draw* entry point (DESIGN.md §8). Costs one shared-state
    /// advance (one row, like any hardware cycle), so programs that never
    /// restart consume nothing and stay bit-identical to the pre-program
    /// sampler stream.
    #[inline]
    pub fn control_draw(&mut self) -> u32 {
        self.bank.next_u32_lane(0)
    }

    /// Consume one batch of at most `k` (item, weight) pairs.
    pub fn consume_batch(&mut self, state: &mut WrsState, items: &[u32], weights: &[u32]) {
        assert_eq!(items.len(), weights.len(), "items/weights misaligned");
        assert!(
            items.len() <= self.k(),
            "batch of {} exceeds parallelism {}",
            items.len(),
            self.k()
        );
        if items.is_empty() {
            return;
        }
        kogge_stone_inclusive(weights, &mut self.prefix);
        let row = &mut self.row[..items.len()];
        self.bank.next_row(row);
        if let Some(j) = batch_candidate(weights, state.w_sum, &self.prefix, row) {
            state.reservoir = Some(items[j]);
        }
        state.w_sum += batch_total(&self.prefix);
        state.items_seen += items.len() as u64;
        state.batches += 1;
    }

    /// Run a complete selection over parallel item/weight slices,
    /// batching internally. Returns the sampled item, or `None` if all
    /// weights are zero (dead end).
    pub fn select(&mut self, items: &[u32], weights: &[u32]) -> Option<u32> {
        assert_eq!(items.len(), weights.len());
        let mut state = WrsState::new();
        let k = self.k();
        for (ib, wb) in items.chunks(k).zip(weights.chunks(k)) {
            self.consume_batch(&mut state, ib, wb);
        }
        state.reservoir
    }

    /// Like [`ParallelWrs::select`], but over indices `0..weights.len()`.
    pub fn select_index(&mut self, weights: &[u32]) -> Option<usize> {
        self.select_index_with(weights.len(), |i| weights[i])
    }

    /// Streaming index selection: weights are produced lane by lane from
    /// `w(i)` exactly as the hardware's Weight Updater feeds the sampler,
    /// so callers never materialize a weight vector. Draw-for-draw
    /// identical to [`ParallelWrs::select_index`] on the same weights
    /// (one RNG row per non-empty batch, zero-weight lanes included).
    pub fn select_index_with(&mut self, len: usize, w: impl Fn(usize) -> u32) -> Option<usize> {
        let mut state = WrsState::new();
        let k = self.k();
        // Detach the lane scratch so `consume_batch` can re-borrow self;
        // `mem::take` keeps the allocations across calls.
        let mut idx_buf = std::mem::take(&mut self.idx_buf);
        let mut wbuf = std::mem::take(&mut self.wbuf);
        let mut base = 0usize;
        while base < len {
            let m = k.min(len - base);
            idx_buf.clear();
            idx_buf.extend((base..base + m).map(|i| i as u32));
            wbuf.clear();
            wbuf.extend((base..base + m).map(&w));
            self.consume_batch(&mut state, &idx_buf, &wbuf);
            base += m;
        }
        self.idx_buf = idx_buf;
        self.wbuf = wbuf;
        state.reservoir.map(|v| v as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{assert_counts_match, counts_from};
    use crate::reservoir::select_integer;

    #[test]
    fn dead_end_returns_none() {
        let mut wrs = ParallelWrs::new(1, 4);
        assert_eq!(wrs.select(&[1, 2, 3], &[0, 0, 0]), None);
        assert_eq!(wrs.select(&[], &[]), None);
    }

    #[test]
    fn single_item_selected() {
        let mut wrs = ParallelWrs::new(2, 4);
        // P(reject) = 2^-32 per draw; 100 draws won't hit it.
        for _ in 0..100 {
            assert_eq!(wrs.select(&[9], &[5]), Some(9));
        }
    }

    #[test]
    fn batch_candidate_picks_largest_accepted_index() {
        // r = 0 accepts every non-zero weight, so the comparator tree must
        // return the last non-zero lane.
        let weights = [1u32, 2, 0, 3];
        let mut prefix = Vec::new();
        kogge_stone_inclusive(&weights, &mut prefix);
        let row = [0u32; 4];
        assert_eq!(batch_candidate(&weights, 0, &prefix, &row), Some(3));
        // All-max uniforms reject everything.
        let row = [u32::MAX; 4];
        assert_eq!(batch_candidate(&weights, 0, &prefix, &row), None);
    }

    #[test]
    fn batch_candidate_zero_weights_never_win() {
        let weights = [0u32, 7, 0, 0];
        let mut prefix = Vec::new();
        kogge_stone_inclusive(&weights, &mut prefix);
        let row = [0u32; 4];
        assert_eq!(batch_candidate(&weights, 0, &prefix, &row), Some(1));
    }

    #[test]
    fn k1_matches_sequential_integer_wrs_exactly() {
        // With k = 1 and the same seed, the parallel sampler must follow
        // the sequential hardware-test sampler draw for draw (zero weights
        // excluded: the sequential helper skips them without drawing).
        let weights: Vec<u32> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        for seed in 0..20u64 {
            let mut par = ParallelWrs::new(seed, 1);
            let items: Vec<u32> = (0..weights.len() as u32).collect();
            let got = par.select(&items, &weights);
            let mut bank = lightrw_rng::StreamBank::new(seed, 1);
            let want = select_integer(weights.iter().copied(), &mut bank).map(|i| i as u32);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn distribution_matches_weights_for_various_k() {
        let weights = [5u32, 0, 1, 8, 3, 12, 2, 7, 1, 1];
        for k in [1usize, 2, 4, 8, 16] {
            let mut wrs = ParallelWrs::new(42 + k as u64, k);
            let counts = counts_from(weights.len(), 120_000, || {
                wrs.select_index(&weights).unwrap()
            });
            assert_counts_match(&counts, &weights);
        }
    }

    #[test]
    fn distribution_stable_across_stream_lengths() {
        // Long streams (many batches) must still be fair: last item of a
        // 100-item uniform stream should win ~1% of the time.
        let n = 100usize;
        let weights = vec![1u32; n];
        let mut wrs = ParallelWrs::new(7, 8);
        let draws = 100_000;
        let counts = counts_from(n, draws, || wrs.select_index(&weights).unwrap());
        assert_counts_match(&counts, &weights);
    }

    #[test]
    fn streaming_entry_matches_slice_entry_draw_for_draw() {
        let weights = [5u32, 0, 1, 8, 3, 12, 2, 7, 1, 1, 0, 4];
        for k in [1usize, 3, 4, 16] {
            for seed in 0..10u64 {
                let mut a = ParallelWrs::new(seed, k);
                let mut b = ParallelWrs::new(seed, k);
                for _ in 0..50 {
                    assert_eq!(
                        a.select_index(&weights),
                        b.select_index_with(weights.len(), |i| weights[i]),
                        "k={k} seed={seed}"
                    );
                }
                assert_eq!(a.rows_consumed(), b.rows_consumed());
            }
        }
    }

    #[test]
    fn state_accounting() {
        let mut wrs = ParallelWrs::new(3, 4);
        let mut state = WrsState::new();
        wrs.consume_batch(&mut state, &[1, 2, 3, 4], &[1, 1, 1, 1]);
        wrs.consume_batch(&mut state, &[5, 6], &[1, 1]);
        assert_eq!(state.items_seen, 6);
        assert_eq!(state.batches, 2);
        assert_eq!(state.w_sum, 6);
        assert!(state.reservoir.is_some());
    }

    #[test]
    #[should_panic(expected = "exceeds parallelism")]
    fn oversized_batch_panics() {
        let mut wrs = ParallelWrs::new(1, 2);
        let mut state = WrsState::new();
        wrs.consume_batch(&mut state, &[1, 2, 3], &[1, 1, 1]);
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut wrs = ParallelWrs::new(1, 2);
        let mut state = WrsState::new();
        wrs.consume_batch(&mut state, &[], &[]);
        assert_eq!(state, WrsState::new());
    }

    proptest::proptest! {
        #[test]
        fn selection_always_has_nonzero_weight(
            weights in proptest::collection::vec(0u32..50, 1..60),
            k in 1usize..9,
            seed in 0u64..100,
        ) {
            let mut wrs = ParallelWrs::new(seed, k);
            match wrs.select_index(&weights) {
                Some(i) => proptest::prop_assert!(weights[i] > 0),
                None => proptest::prop_assert!(weights.iter().all(|&w| w == 0)),
            }
        }

        #[test]
        fn w_sum_equals_stream_total(
            weights in proptest::collection::vec(0u32..1000, 0..50),
            k in 1usize..6,
        ) {
            let mut wrs = ParallelWrs::new(5, k);
            let mut state = WrsState::new();
            let items: Vec<u32> = (0..weights.len() as u32).collect();
            for (ib, wb) in items.chunks(k).zip(weights.chunks(k)) {
                wrs.consume_batch(&mut state, ib, wb);
            }
            let total: u64 = weights.iter().map(|&w| w as u64).sum();
            proptest::prop_assert_eq!(state.w_sum, total);
        }
    }
}
