//! DRAM channel timing and traffic model.
//!
//! One accelerator instance owns one DRAM channel (paper Fig. 9). The
//! model captures the two properties the paper's optimizations exploit:
//!
//! 1. **Burst amortization** — each request pays a fixed channel-occupancy
//!    gap; the longer the burst, the more of the channel's beat slots carry
//!    data. With the default parameters the streaming bandwidth curve
//!    saturates at ≈ 17.5 GB/s like Fig. 6's measured board.
//! 2. **Random-access latency** — a request's data returns after a fixed
//!    latency; the degree-aware cache exists to hide this for `row_index`.
//!
//! The channel is a shared resource: requests from the Neighbor Info
//! Loader and the Neighbor Loader serialize on `busy_until`, which is how
//! the discrete-event pipeline model reproduces memory-bound behaviour.

/// How a request relates to the channel's current access stream. The
/// distinction reproduces the two regimes of Fig. 6/12:
///
/// - [`RequestKind::Start`] — a new-address access (row activation +
///   burst-pipeline setup): the first command of a neighbor-list fetch,
///   every long-burst command (reorder-buffer allocation), and every
///   random `row_index` access.
/// - [`RequestKind::Cont`] — a sequential continuation riding the open
///   row (the short-burst tail of a list, streaming scans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// New-address access: pays [`DramConfig::rand_gap_cycles`].
    Start,
    /// Sequential continuation: pays [`DramConfig::seq_gap_cycles`].
    Cont,
    /// Long-burst command: pays [`DramConfig::long_gap_cycles`]
    /// (reorder-buffer setup in the Long Burst pipeline, amortized over
    /// many beats — the cost that makes tiny long bursts a loss, Fig. 12).
    Long,
}

/// DRAM channel configuration (defaults model one U250 DDR4 channel behind
/// a 512-bit AXI port at the 300 MHz kernel clock).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Bytes delivered per beat (bus width). 512 bit = 64 B.
    pub bus_bytes: u64,
    /// Kernel clock in MHz (cycle → seconds conversion).
    pub freq_mhz: u64,
    /// Occupancy cycles added to a sequential-continuation request.
    /// Sets the Fig. 6 streaming efficiency: `beats/(beats + seq_gap)`.
    pub seq_gap_cycles: u64,
    /// Occupancy cycles added to a new-address request (row activation +
    /// controller setup).
    pub rand_gap_cycles: u64,
    /// Occupancy cycles added to each long-burst command (row activation
    /// plus reorder-buffer setup in the Long Burst pipeline).
    pub long_gap_cycles: u64,
    /// Cycles from request issue to first data beat (random-access
    /// latency seen by a dependent consumer).
    pub access_latency_cycles: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            bus_bytes: 64,
            freq_mhz: 300,
            // Calibrated against Fig. 6: streaming bandwidth rises from
            // 6.4 GB/s at burst length 1 (paper: 5.7) to 18.1 GB/s at 32
            // (paper: 17.57).
            seq_gap_cycles: 2,
            rand_gap_cycles: 8,
            long_gap_cycles: 8,
            access_latency_cycles: 48,
        }
    }
}

impl DramConfig {
    /// Theoretical peak bandwidth in bytes/second (all beat slots used).
    pub fn peak_bytes_per_sec(&self) -> f64 {
        self.bus_bytes as f64 * self.freq_mhz as f64 * 1e6
    }

    /// Streaming bandwidth (bytes/s) achieved by back-to-back sequential
    /// requests of `beats` beats each — the blue curve of Fig. 6.
    pub fn streaming_bandwidth(&self, beats: u64) -> f64 {
        assert!(beats >= 1);
        let useful = beats as f64;
        let occupied = (beats + self.seq_gap_cycles) as f64;
        self.peak_bytes_per_sec() * useful / occupied
    }

    /// Occupancy gap for a request kind.
    pub fn gap_cycles(&self, kind: RequestKind) -> u64 {
        match kind {
            RequestKind::Start => self.rand_gap_cycles,
            RequestKind::Cont => self.seq_gap_cycles,
            RequestKind::Long => self.long_gap_cycles,
        }
    }

    /// Seconds per cycle.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / (self.freq_mhz as f64 * 1e6)
    }
}

/// Traffic statistics of one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Requests issued.
    pub requests: u64,
    /// Data beats transferred.
    pub beats: u64,
    /// Bytes transferred (`beats * bus_bytes`).
    pub bytes: u64,
    /// Bytes the consumer actually used (set by the caller via
    /// [`DramChannel::note_useful_bytes`]); `useful/bytes` is the paper's
    /// ratio of valid data.
    pub useful_bytes: u64,
    /// Cycles the channel spent occupied (busy beats + request gaps).
    pub busy_cycles: u64,
}

impl DramStats {
    /// The paper's "ratio of valid data" (Fig. 6, red curve).
    pub fn valid_ratio(&self) -> f64 {
        if self.bytes == 0 {
            1.0
        } else {
            self.useful_bytes as f64 / self.bytes as f64
        }
    }
}

/// Timing outcome of one DRAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Cycle at which the request actually started on the channel.
    pub start: u64,
    /// Cycle at which the last data beat is available to the consumer.
    pub data_ready: u64,
    /// Cycle at which the channel becomes free for the next request.
    pub channel_free: u64,
}

/// One DRAM channel: a `busy_until` occupancy line plus traffic counters.
#[derive(Debug, Clone)]
pub struct DramChannel {
    config: DramConfig,
    busy_until: u64,
    stats: DramStats,
}

impl DramChannel {
    /// New idle channel.
    pub fn new(config: DramConfig) -> Self {
        Self {
            config,
            busy_until: 0,
            stats: DramStats::default(),
        }
    }

    /// The channel's configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Issue a request of `beats` beats at cycle `now`.
    ///
    /// The request waits for the channel, occupies it for
    /// `gap(kind) + beats` cycles, and its data is complete
    /// `latency + beats` cycles after it starts.
    pub fn request(&mut self, now: u64, beats: u64, kind: RequestKind) -> DramAccess {
        assert!(beats >= 1, "zero-beat DRAM request");
        let start = now.max(self.busy_until);
        let occupancy = self.config.gap_cycles(kind) + beats;
        self.busy_until = start + occupancy;
        self.stats.requests += 1;
        self.stats.beats += beats;
        self.stats.bytes += beats * self.config.bus_bytes;
        self.stats.busy_cycles += occupancy;
        DramAccess {
            start,
            data_ready: start + self.config.access_latency_cycles + beats,
            channel_free: self.busy_until,
        }
    }

    /// Record that `bytes` of the transferred data were actually consumed.
    pub fn note_useful_bytes(&mut self, bytes: u64) {
        self.stats.useful_bytes += bytes;
    }

    /// Cycle at which the channel is next free.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Reset occupancy and statistics (new experiment run).
    pub fn reset(&mut self) {
        self.busy_until = 0;
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_models_u250_channel() {
        let c = DramConfig::default();
        assert_eq!(c.peak_bytes_per_sec(), 19.2e9);
        // Long bursts approach peak; paper saturates at 17.57 GB/s.
        let b64 = c.streaming_bandwidth(64);
        assert!(b64 > 18.0e9, "{b64}");
        // Single-beat accesses are far below peak (Fig. 6 left edge).
        let b1 = c.streaming_bandwidth(1);
        assert!(b1 < 8.0e9, "{b1}");
        // Burst-32 streaming reproduces the paper's 17.57 GB/s plateau.
        let b32 = c.streaming_bandwidth(32);
        assert!((17.0e9..18.5e9).contains(&b32), "{b32}");
    }

    #[test]
    fn streaming_bandwidth_monotone_in_burst_length() {
        let c = DramConfig::default();
        let mut prev = 0.0;
        for beats in [1u64, 2, 4, 8, 16, 32, 64] {
            let bw = c.streaming_bandwidth(beats);
            assert!(bw > prev);
            prev = bw;
        }
    }

    #[test]
    fn requests_serialize_on_the_channel() {
        let mut ch = DramChannel::new(DramConfig::default());
        let a = ch.request(0, 4, RequestKind::Cont); // occupies [0, 6)
        let b = ch.request(0, 4, RequestKind::Cont); // must wait
        assert_eq!(a.start, 0);
        assert_eq!(a.channel_free, 6);
        assert_eq!(b.start, 6);
        assert_eq!(b.channel_free, 12);
    }

    #[test]
    fn start_requests_pay_the_larger_gap() {
        let mut ch = DramChannel::new(DramConfig::default());
        let a = ch.request(0, 4, RequestKind::Start);
        assert_eq!(a.channel_free, 12); // 8 + 4
    }

    #[test]
    fn idle_channel_starts_immediately() {
        let mut ch = DramChannel::new(DramConfig::default());
        ch.request(0, 1, RequestKind::Start);
        let late = ch.request(100, 2, RequestKind::Cont);
        assert_eq!(late.start, 100);
    }

    #[test]
    fn data_ready_includes_latency() {
        let cfg = DramConfig::default();
        let mut ch = DramChannel::new(cfg);
        let a = ch.request(10, 8, RequestKind::Start);
        assert_eq!(a.data_ready, 10 + cfg.access_latency_cycles + 8);
    }

    #[test]
    fn stats_accumulate() {
        let mut ch = DramChannel::new(DramConfig::default());
        ch.request(0, 4, RequestKind::Cont);
        ch.request(0, 2, RequestKind::Cont);
        ch.note_useful_bytes(100);
        let s = ch.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.beats, 6);
        assert_eq!(s.bytes, 6 * 64);
        assert_eq!(s.useful_bytes, 100);
        assert_eq!(s.busy_cycles, 4 + 2 + 2 * 2);
        assert!((s.valid_ratio() - 100.0 / 384.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut ch = DramChannel::new(DramConfig::default());
        ch.request(0, 4, RequestKind::Start);
        ch.reset();
        assert_eq!(ch.busy_until(), 0);
        assert_eq!(ch.stats().requests, 0);
    }

    #[test]
    #[should_panic(expected = "zero-beat")]
    fn zero_beat_request_rejected() {
        DramChannel::new(DramConfig::default()).request(0, 0, RequestKind::Start);
    }

    #[test]
    fn empty_stats_valid_ratio_is_one() {
        assert_eq!(DramStats::default().valid_ratio(), 1.0);
    }
}
