//! The Fig. 6 analysis: memory bandwidth and valid-data ratio across burst
//! length configurations, derived from a real degree distribution.
//!
//! The paper measures MetaPath on livejournal; both curves are functions
//! of (a) the channel's request-gap amortization and (b) how adjacency
//! byte-lengths round up to the burst size, weighted by how often each
//! vertex is traversed. Per §5.1's stationary analysis, traversal
//! frequency is proportional to degree, so the expected ratio of valid
//! data under a fixed burst of `S` beats is
//!
//! ```text
//!   Σ_v  deg(v) · deg(v)·E      /   Σ_v  deg(v) · ⌈deg(v)·E / S·B⌉·S·B
//! ```
//!
//! with `E` bytes per edge and `B` bytes per beat (visit-weighted useful
//! over loaded bytes).

use crate::burst::{BurstConfig, BurstPlan};
use crate::dram::DramConfig;
use lightrw_graph::{Graph, VertexId, COL_ENTRY_BYTES};

/// One row of the Fig. 6 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstSweepPoint {
    /// Burst length in beats (0 = the paper's "0" column, which disables
    /// coalescing and equals length 1 in effect).
    pub burst_beats: u64,
    /// Streaming memory bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Degree-weighted expected ratio of valid data in `[0,1]`.
    pub valid_ratio: f64,
}

/// Expected valid-data ratio of fixed-burst neighbor loading on `g`,
/// weighting each vertex by its stationary visit frequency (∝ degree).
pub fn expected_valid_ratio(g: &Graph, burst_beats: u64, dram: &DramConfig) -> f64 {
    assert!(burst_beats >= 1);
    let cfg = BurstConfig {
        short_beats: burst_beats,
        long_beats: 0,
    };
    let mut useful = 0.0f64;
    let mut loaded = 0.0f64;
    for v in 0..g.num_vertices() as VertexId {
        let deg = g.degree(v) as f64;
        if deg == 0.0 {
            continue;
        }
        let c = g.neighbor_bytes(v);
        let plan = BurstPlan::plan(c, cfg, dram);
        useful += deg * plan.useful_bytes as f64;
        loaded += deg * plan.loaded_bytes as f64;
    }
    if loaded == 0.0 {
        1.0
    } else {
        useful / loaded
    }
}

/// Expected valid-data ratio under a *dynamic* burst configuration —
/// used by the Fig. 12 analysis and the ablation benches.
pub fn expected_valid_ratio_dynamic(g: &Graph, cfg: BurstConfig, dram: &DramConfig) -> f64 {
    let mut useful = 0.0f64;
    let mut loaded = 0.0f64;
    for v in 0..g.num_vertices() as VertexId {
        let deg = g.degree(v) as f64;
        if deg == 0.0 {
            continue;
        }
        let plan = BurstPlan::plan(g.neighbor_bytes(v), cfg, dram);
        useful += deg * plan.useful_bytes as f64;
        loaded += deg * plan.loaded_bytes as f64;
    }
    if loaded == 0.0 {
        1.0
    } else {
        useful / loaded
    }
}

/// Run the Fig. 6 sweep over the paper's burst lengths (0,1,2,4,…,64).
pub fn fig6_sweep(g: &Graph, dram: &DramConfig) -> Vec<BurstSweepPoint> {
    let lengths = [0u64, 1, 2, 4, 8, 16, 32, 64];
    lengths
        .iter()
        .map(|&s| {
            let eff = s.max(1); // the paper's "0" = coalescing disabled
            BurstSweepPoint {
                burst_beats: s,
                bandwidth_gbps: dram.streaming_bandwidth(eff) / 1e9,
                valid_ratio: expected_valid_ratio(g, eff, dram),
            }
        })
        .collect()
}

/// Average static edge payload of a vertex in bytes (diagnostics).
pub fn avg_neighbor_bytes(g: &Graph) -> f64 {
    if g.num_vertices() == 0 {
        return 0.0;
    }
    g.num_edges() as f64 * COL_ENTRY_BYTES as f64 / g.num_vertices() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightrw_graph::generators;

    #[test]
    fn valid_ratio_decreases_with_burst_length() {
        let g = generators::rmat(12, 8, 1);
        let dram = DramConfig::default();
        let mut prev = 1.1;
        for s in [1u64, 2, 4, 8, 16, 32, 64] {
            let r = expected_valid_ratio(&g, s, &dram);
            assert!(r <= prev + 1e-12, "ratio must be non-increasing at {s}");
            assert!(r > 0.0 && r <= 1.0);
            prev = r;
        }
    }

    #[test]
    fn fig6_shape_matches_paper() {
        // Paper (livejournal, avg degree 14): valid ratio 91% at b=1
        // dropping to 8% at b=64; bandwidth 5.7 → 17.57 GB/s. Our stand-in
        // at reduced scale must reproduce the qualitative shape: high
        // ratio at short bursts, <25% at b=64, bandwidth saturating ≥ 2.5×
        // the single-beat value.
        let g = lightrw_graph::DatasetProfile::livejournal().stand_in(12, 7);
        let dram = DramConfig::default();
        let sweep = fig6_sweep(&g, &dram);
        let at = |b: u64| sweep.iter().find(|p| p.burst_beats == b).unwrap();
        assert!(at(1).valid_ratio > 0.5, "{}", at(1).valid_ratio);
        assert!(at(64).valid_ratio < 0.25, "{}", at(64).valid_ratio);
        assert!(at(64).bandwidth_gbps > 2.5 * at(1).bandwidth_gbps);
        assert!(at(64).bandwidth_gbps < dram.peak_bytes_per_sec() / 1e9);
    }

    #[test]
    fn dynamic_burst_preserves_high_valid_ratio() {
        // b1+b32 must have a valid ratio close to b1-only (unused < 64 B
        // per request) while fixed b32 wastes much more.
        let g = generators::rmat(12, 8, 3);
        let dram = DramConfig::default();
        let dynamic = expected_valid_ratio_dynamic(&g, BurstConfig::with_long(32), &dram);
        let fixed_short = expected_valid_ratio(&g, 1, &dram);
        let fixed_long = expected_valid_ratio(&g, 32, &dram);
        assert!(
            (dynamic - fixed_short).abs() < 1e-9,
            "dynamic {dynamic} short {fixed_short}"
        );
        assert!(dynamic > fixed_long + 0.1);
    }

    #[test]
    fn ratio_is_one_for_exact_multiples() {
        // Every vertex with degree 8 → 64 B → exactly 1 beat.
        let g = generators::ring(64, 4); // degree 8, 8 B/edge = 64 B
        let dram = DramConfig::default();
        assert!((expected_valid_ratio(&g, 1, &dram) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_ratio_is_one() {
        let g = lightrw_graph::GraphBuilder::directed().build();
        assert_eq!(expected_valid_ratio(&g, 4, &DramConfig::default()), 1.0);
    }

    #[test]
    fn avg_neighbor_bytes_sane() {
        let g = generators::ring(10, 2); // degree 4 → 32 B
        assert!((avg_neighbor_bytes(&g) - 32.0).abs() < 1e-12);
    }
}
