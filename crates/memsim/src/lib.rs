//! # lightrw-memsim — accelerator memory-system models
//!
//! The substitution for the FPGA board's memory fabric (DESIGN.md §1).
//! Everything the paper's memory optimizations interact with is modelled
//! here, parameterized to the Alveo U250 configuration of §6.1:
//!
//! - [`dram`] — a DRAM channel with burst semantics: 64 B/beat, one beat
//!   per cycle at 300 MHz, a fixed inter-request gap (which creates the
//!   bandwidth-vs-burst-length curve of Fig. 6) and a fixed random-access
//!   latency (which the degree-aware cache hides).
//! - [`burst`] — the dynamic burst engine's command generator (§5.2):
//!   `⌊c/S1⌋` long bursts plus `⌈rem/S2⌉` short bursts, with the
//!   valid-data-ratio accounting of Fig. 6/12.
//! - [`cache`] — the degree-aware cache (§5.1) together with the
//!   direct-mapped (DMC) and uncached baselines of Fig. 11, plus a
//!   set-associative LRU variant for the extension ablations.
//! - [`bandwidth`] — the Fig. 6 sweep: measured bandwidth and valid-data
//!   ratio across burst-length configurations, computed from a real graph's
//!   degree distribution.

pub mod bandwidth;
pub mod burst;
pub mod cache;
pub mod dram;

pub use burst::{BurstConfig, BurstPlan};
pub use cache::{CacheOutcome, CachePolicy, CacheStats, RowCache};
pub use dram::{DramChannel, DramConfig, DramStats, RequestKind};
