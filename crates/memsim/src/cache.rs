//! On-chip caching of `row_index` entries (paper §5.1, Fig. 5).
//!
//! The Neighbor Info Loader's accesses to `row_index` are uniformly random
//! in vertex id (current vertices are sampled), so recency-based policies
//! fail (the reuse distance is huge). The degree-aware cache (DAC) instead
//! bets on the stationary distribution: a vertex's visit probability grows
//! with its degree (`Pr[v] = Ω(N(v))`, Eq. 9–11), so on a miss the resident
//! entry is replaced **only if the incoming vertex has a strictly higher
//! degree**. This makes the cache converge toward holding the hottest
//! (highest-degree) vertices with zero preprocessing — the paper's contrast
//! with reordering/partitioning approaches.
//!
//! Three policies are modelled for Fig. 11, plus a set-associative LRU
//! variant used by the extension ablation benches:
//! [`CachePolicy::DegreeAware`], [`CachePolicy::AlwaysReplace`] (a plain
//! direct-mapped cache, "DMC"), and [`CachePolicy::None`] (uncached).

use lightrw_graph::VertexId;

/// Replacement policy of the row cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Degree-aware replacement: keep the higher-degree entry (DAC).
    DegreeAware,
    /// Always replace on miss: classic direct-mapped cache (DMC).
    AlwaysReplace,
    /// LRU within a set (meaningful for associativity > 1); with
    /// associativity 1 it degenerates to [`CachePolicy::AlwaysReplace`].
    Lru,
    /// No cache: every access misses (the "Uncached" series of Fig. 11).
    None,
}

impl CachePolicy {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::DegreeAware => "DAC",
            Self::AlwaysReplace => "DMC",
            Self::Lru => "LRU",
            Self::None => "uncached",
        }
    }
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Entry served from on-chip memory (one cycle).
    Hit,
    /// Entry fetched from DRAM.
    Miss,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u32,
    addr: u64,
    degree: u32,
    /// LRU stamp within the set.
    stamp: u64,
    valid: bool,
}

impl Line {
    const INVALID: Line = Line {
        tag: 0,
        addr: 0,
        degree: 0,
        stamp: 0,
        valid: false,
    };
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served on-chip.
    pub hits: u64,
    /// Lookups that went to DRAM.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0,1]` (1.0 when no lookups — matches "uncached").
    pub fn miss_ratio(&self) -> f64 {
        if self.lookups() == 0 {
            1.0
        } else {
            self.misses as f64 / self.lookups() as f64
        }
    }

    /// Hit ratio in `[0,1]`.
    pub fn hit_ratio(&self) -> f64 {
        1.0 - self.miss_ratio()
    }
}

/// The on-chip cache over `{address, degree}` row entries.
///
/// Capacity = `2^index_bits * associativity` entries; the paper's
/// evaluation uses 2^12 entries in URAM (§6.3.1).
#[derive(Debug, Clone)]
pub struct RowCache {
    policy: CachePolicy,
    index_bits: u32,
    assoc: usize,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
}

impl RowCache {
    /// Direct-mapped cache with `2^index_bits` entries under `policy`.
    pub fn direct_mapped(policy: CachePolicy, index_bits: u32) -> Self {
        Self::set_associative(policy, index_bits, 1)
    }

    /// Set-associative cache: `2^index_bits` sets × `assoc` ways.
    pub fn set_associative(policy: CachePolicy, index_bits: u32, assoc: usize) -> Self {
        assert!(assoc >= 1);
        assert!(index_bits < 28, "cache too large to model");
        let sets = 1usize << index_bits;
        Self {
            policy,
            index_bits,
            assoc,
            lines: vec![Line::INVALID; sets * assoc],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The paper's evaluated capacity: 2^12 entries (§6.3.1).
    pub fn paper_default(policy: CachePolicy) -> Self {
        Self::direct_mapped(policy, 12)
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.lines.len()
    }

    /// The replacement policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Look up vertex `v`'s `{addr, degree}` row entry. On a miss, `fetch`
    /// is invoked (modelling the DRAM access) and the replacement policy
    /// decides whether to install the fetched entry (Fig. 5 steps d–f).
    pub fn lookup(
        &mut self,
        v: VertexId,
        fetch: impl FnOnce() -> (u64, u32),
    ) -> (CacheOutcome, u64, u32) {
        self.clock += 1;
        if matches!(self.policy, CachePolicy::None) {
            self.stats.misses += 1;
            let (addr, degree) = fetch();
            return (CacheOutcome::Miss, addr, degree);
        }
        let sets = 1usize << self.index_bits;
        let set = (v as usize) & (sets - 1);
        let tag = v >> self.index_bits;
        let base = set * self.assoc;
        let ways = &mut self.lines[base..base + self.assoc];

        // Probe all ways (parallel tag compare in hardware, Fig. 5 step b).
        if let Some(way) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            way.stamp = self.clock;
            self.stats.hits += 1;
            return (CacheOutcome::Hit, way.addr, way.degree);
        }

        // Miss: fetch from DRAM, then decide replacement.
        self.stats.misses += 1;
        let (addr, degree) = fetch();
        let incoming = Line {
            tag,
            addr,
            degree,
            stamp: self.clock,
            valid: true,
        };
        // Invalid way first, regardless of policy.
        if let Some(slot) = ways.iter_mut().find(|l| !l.valid) {
            *slot = incoming;
            return (CacheOutcome::Miss, addr, degree);
        }
        match self.policy {
            CachePolicy::DegreeAware => {
                // Replace the lowest-degree resident, and only if the
                // incoming degree is strictly higher (Fig. 5 step e).
                let victim = ways
                    .iter_mut()
                    .min_by_key(|l| l.degree)
                    .expect("non-empty set");
                if degree > victim.degree {
                    *victim = incoming;
                }
            }
            CachePolicy::AlwaysReplace => {
                // Direct-mapped semantics: replace the (single) resident;
                // with assoc > 1, replace the oldest.
                let victim = ways
                    .iter_mut()
                    .min_by_key(|l| l.stamp)
                    .expect("non-empty set");
                *victim = incoming;
            }
            CachePolicy::Lru => {
                let victim = ways
                    .iter_mut()
                    .min_by_key(|l| l.stamp)
                    .expect("non-empty set");
                *victim = incoming;
            }
            CachePolicy::None => unreachable!(),
        }
        (CacheOutcome::Miss, addr, degree)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clear contents and statistics.
    pub fn reset(&mut self) {
        self.lines.fill(Line::INVALID);
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch_for(v: VertexId) -> (u64, u32) {
        (v as u64 * 8, v % 100) // degree = v % 100 for variety
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = RowCache::direct_mapped(CachePolicy::DegreeAware, 4);
        let (o1, addr, deg) = c.lookup(5, || (40, 7));
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!((addr, deg), (40, 7));
        let (o2, addr2, deg2) = c.lookup(5, || panic!("must not fetch on hit"));
        assert_eq!(o2, CacheOutcome::Hit);
        assert_eq!((addr2, deg2), (40, 7));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn degree_aware_keeps_high_degree_entry() {
        let mut c = RowCache::direct_mapped(CachePolicy::DegreeAware, 2);
        // v=1 (set 1) with degree 50.
        c.lookup(1, || (8, 50));
        // v=5 maps to the same set (5 & 3 == 1) but has lower degree 10:
        // fetched, NOT installed.
        c.lookup(5, || (40, 10));
        // v=1 must still be resident.
        let (o, _, d) = c.lookup(1, || panic!("evicted high-degree entry"));
        assert_eq!(o, CacheOutcome::Hit);
        assert_eq!(d, 50);
        // v=9, same set, higher degree 99: replaces.
        c.lookup(9, || (72, 99));
        let (o, _, _) = c.lookup(1, || (8, 50));
        assert_eq!(o, CacheOutcome::Miss);
    }

    #[test]
    fn always_replace_evicts_unconditionally() {
        let mut c = RowCache::direct_mapped(CachePolicy::AlwaysReplace, 2);
        c.lookup(1, || (8, 50));
        c.lookup(5, || (40, 10)); // same set, lower degree, still replaces
        let (o, _, _) = c.lookup(1, || (8, 50));
        assert_eq!(o, CacheOutcome::Miss);
    }

    #[test]
    fn none_policy_never_hits() {
        let mut c = RowCache::direct_mapped(CachePolicy::None, 4);
        for _ in 0..3 {
            let (o, _, _) = c.lookup(7, || fetch_for(7));
            assert_eq!(o, CacheOutcome::Miss);
        }
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().miss_ratio(), 1.0);
    }

    #[test]
    fn small_vertex_set_fits_entirely() {
        // Fig. 11: graphs smaller than the cache have ~zero miss ratio
        // after warmup.
        let mut c = RowCache::direct_mapped(CachePolicy::DegreeAware, 8);
        for round in 0..10 {
            for v in 0..256u32 {
                let (o, _, _) = c.lookup(v, || fetch_for(v));
                if round > 0 {
                    assert_eq!(o, CacheOutcome::Hit, "round {round} v {v}");
                }
            }
        }
        assert_eq!(c.stats().misses, 256);
    }

    #[test]
    fn lru_set_associative_retains_recent() {
        let mut c = RowCache::set_associative(CachePolicy::Lru, 0, 2); // 1 set, 2 ways
        c.lookup(1, || (0, 0));
        c.lookup(2, || (0, 0));
        c.lookup(1, || panic!("1 should hit")); // refresh 1
        c.lookup(3, || (0, 0)); // evicts 2 (oldest)
        let (o, _, _) = c.lookup(1, || panic!("1 evicted"));
        assert_eq!(o, CacheOutcome::Hit);
        let (o, _, _) = c.lookup(2, || (0, 0));
        assert_eq!(o, CacheOutcome::Miss);
    }

    #[test]
    fn degree_aware_set_associative_replaces_min_degree_way() {
        let mut c = RowCache::set_associative(CachePolicy::DegreeAware, 0, 2);
        c.lookup(1, || (0, 30));
        c.lookup(2, || (0, 70));
        // New entry with degree 50: replaces the degree-30 way, keeps 70.
        c.lookup(3, || (0, 50));
        assert_eq!(c.lookup(2, || panic!("70 evicted")).0, CacheOutcome::Hit);
        assert_eq!(
            c.lookup(3, || panic!("50 not installed")).0,
            CacheOutcome::Hit
        );
        let (o, _, _) = c.lookup(1, || (0, 30));
        assert_eq!(o, CacheOutcome::Miss);
    }

    #[test]
    fn stats_ratios() {
        let mut c = RowCache::direct_mapped(CachePolicy::AlwaysReplace, 4);
        c.lookup(0, || fetch_for(0));
        c.lookup(0, || fetch_for(0));
        c.lookup(0, || fetch_for(0));
        c.lookup(1, || fetch_for(1));
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(c.stats().lookups(), 4);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut c = RowCache::paper_default(CachePolicy::DegreeAware);
        assert_eq!(c.capacity(), 1 << 12);
        c.lookup(3, || fetch_for(3));
        c.reset();
        assert_eq!(c.stats().lookups(), 0);
        let (o, _, _) = c.lookup(3, || fetch_for(3));
        assert_eq!(o, CacheOutcome::Miss);
    }

    #[test]
    fn policy_names() {
        assert_eq!(CachePolicy::DegreeAware.name(), "DAC");
        assert_eq!(CachePolicy::AlwaysReplace.name(), "DMC");
        assert_eq!(CachePolicy::None.name(), "uncached");
        assert_eq!(CachePolicy::Lru.name(), "LRU");
    }
}
