//! The dynamic burst engine's command generator (paper §5.2, Figs. 7–8).
//!
//! Neighbor lists have wildly varying byte lengths `c`. A fixed long burst
//! wastes bandwidth on short lists (low valid-data ratio); a fixed short
//! burst wastes channel slots on long lists (low bandwidth). The Burst cmd
//! Generator splits each request into
//!
//! ```text
//!   n_long  = ⌊c / S1⌋             long bursts   (S1 bytes each)
//!   n_short = ⌈(c - n_long·S1)/S2⌉ short bursts  (S2 bytes each)
//! ```
//!
//! so total loaded = `⌈c/S2⌉·S2` when `S2 | S1`, i.e. unused data per
//! request is bounded by `S2` — the §5.2 claim, verified by property tests.

use crate::dram::DramConfig;

/// Burst-length configuration in *beats* (bus transfers). The paper writes
/// configurations as `b{short} + b{long}`, e.g. `b1 + b32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstConfig {
    /// Short burst length in beats (≥ 1).
    pub short_beats: u64,
    /// Long burst length in beats; 0 disables the long pipeline (the
    /// paper's `b1 + b0` baseline).
    pub long_beats: u64,
}

impl BurstConfig {
    /// The paper's baseline: short bursts only (`b1 + b0`).
    pub fn short_only() -> Self {
        Self {
            short_beats: 1,
            long_beats: 0,
        }
    }

    /// A `b1 + b{long}` configuration.
    pub fn with_long(long_beats: u64) -> Self {
        Self {
            short_beats: 1,
            long_beats,
        }
    }

    /// The configuration the paper selects after the Fig. 12 sweep.
    pub fn paper_best() -> Self {
        Self::with_long(32)
    }

    /// Display name in the paper's notation.
    pub fn name(&self) -> String {
        format!("b{}+b{}", self.short_beats, self.long_beats)
    }
}

/// The burst commands for one neighbor-list request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstPlan {
    /// Number of long bursts.
    pub n_long: u64,
    /// Number of short bursts.
    pub n_short: u64,
    /// Long burst length in beats.
    pub long_beats: u64,
    /// Short burst length in beats.
    pub short_beats: u64,
    /// Requested (useful) bytes.
    pub useful_bytes: u64,
    /// Bytes actually transferred.
    pub loaded_bytes: u64,
}

impl BurstPlan {
    /// Plan the bursts for a `c`-byte contiguous request under `cfg`.
    pub fn plan(c_bytes: u64, cfg: BurstConfig, dram: &DramConfig) -> Self {
        assert!(cfg.short_beats >= 1, "short burst must be at least 1 beat");
        let short_bytes = cfg.short_beats * dram.bus_bytes;
        let long_bytes = cfg.long_beats * dram.bus_bytes;
        let n_long = c_bytes.checked_div(long_bytes).unwrap_or(0);
        let rem = c_bytes - n_long * long_bytes;
        let n_short = rem.div_ceil(short_bytes);
        Self {
            n_long,
            n_short,
            long_beats: cfg.long_beats,
            short_beats: cfg.short_beats,
            useful_bytes: c_bytes,
            loaded_bytes: n_long * long_bytes + n_short * short_bytes,
        }
    }

    /// Total DRAM requests (each burst is one request).
    pub fn requests(&self) -> u64 {
        self.n_long + self.n_short
    }

    /// Total beats transferred.
    pub fn beats(&self) -> u64 {
        self.n_long * self.long_beats + self.n_short * self.short_beats
    }

    /// Bytes loaded but never consumed.
    pub fn unused_bytes(&self) -> u64 {
        self.loaded_bytes - self.useful_bytes
    }

    /// Iterate the individual burst commands as `(beats, kind)`, long
    /// bursts first (the Long Burst pipeline drains the bulk, Fig. 8).
    ///
    /// Request-kind assignment reproduces the engine's cost structure:
    /// every **long** burst is a [`crate::dram::RequestKind::Long`] (row activation +
    /// reorder-buffer setup in the Long Burst pipeline — the per-command
    /// overhead that makes `b1+b2` lose to the baseline in Fig. 12), while
    /// **short** bursts are sequential continuations except when they open
    /// the list themselves.
    pub fn commands(&self) -> impl Iterator<Item = (u64, crate::dram::RequestKind)> + '_ {
        use crate::dram::RequestKind::{Cont, Long, Start};
        let no_longs = self.n_long == 0;
        std::iter::repeat_n((self.long_beats, Long), self.n_long as usize).chain(
            (0..self.n_short as usize).map(move |i| {
                let kind = if no_longs && i == 0 { Start } else { Cont };
                (self.short_beats, kind)
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> DramConfig {
        DramConfig::default() // 64 B/beat
    }

    #[test]
    fn paper_example_33_neighbors() {
        // Fig. 7: |N(Va)| = 33 with S1 = 16 beats, S2 = 1 beat — in units
        // of 64 B beats carrying 8 edges each... the paper's example counts
        // in *elements* with S1=16, S2=1. We reproduce it with 1-byte
        // elements and a 1-byte bus to match the arithmetic exactly.
        let tiny = DramConfig {
            bus_bytes: 1,
            ..DramConfig::default()
        };
        let plan = BurstPlan::plan(
            33,
            BurstConfig {
                short_beats: 1,
                long_beats: 16,
            },
            &tiny,
        );
        assert_eq!(plan.n_long, 2); // ⌊33/16⌋
        assert_eq!(plan.n_short, 1); // ⌈(33-32)/1⌉
        assert_eq!(plan.loaded_bytes, 33);

        // |N(Vb)| = 2 → zero long, two short bursts.
        let plan = BurstPlan::plan(
            2,
            BurstConfig {
                short_beats: 1,
                long_beats: 16,
            },
            &tiny,
        );
        assert_eq!(plan.n_long, 0);
        assert_eq!(plan.n_short, 2);
    }

    #[test]
    fn short_only_baseline() {
        let plan = BurstPlan::plan(1000, BurstConfig::short_only(), &dram());
        assert_eq!(plan.n_long, 0);
        assert_eq!(plan.n_short, 16); // ⌈1000/64⌉
        assert_eq!(plan.loaded_bytes, 1024);
        assert_eq!(plan.requests(), 16);
        assert_eq!(plan.beats(), 16);
    }

    #[test]
    fn mixed_split() {
        // c = 5000 B, b1+b32: long = 2048 B → 2 long (4096), rem 904 → 15 short.
        let plan = BurstPlan::plan(5000, BurstConfig::with_long(32), &dram());
        assert_eq!(plan.n_long, 2);
        assert_eq!(plan.n_short, 15);
        assert_eq!(plan.loaded_bytes, 2 * 2048 + 15 * 64);
        assert_eq!(plan.unused_bytes(), plan.loaded_bytes - 5000);
    }

    #[test]
    fn zero_byte_request_loads_nothing() {
        let plan = BurstPlan::plan(0, BurstConfig::with_long(32), &dram());
        assert_eq!(plan.requests(), 0);
        assert_eq!(plan.loaded_bytes, 0);
        assert_eq!(plan.unused_bytes(), 0);
    }

    #[test]
    fn commands_order_long_first() {
        let plan = BurstPlan::plan(3 * 2048 + 100, BurstConfig::with_long(32), &dram());
        use crate::dram::RequestKind::{Cont, Long};
        let cmds: Vec<(u64, _)> = plan.commands().collect();
        assert_eq!(
            cmds,
            vec![(32, Long), (32, Long), (32, Long), (1, Cont), (1, Cont)]
        );
    }

    #[test]
    fn exact_multiple_has_no_shorts() {
        let plan = BurstPlan::plan(4096, BurstConfig::with_long(32), &dram());
        assert_eq!(plan.n_long, 2);
        assert_eq!(plan.n_short, 0);
        assert_eq!(plan.unused_bytes(), 0);
    }

    #[test]
    fn paper_name_format() {
        assert_eq!(BurstConfig::with_long(32).name(), "b1+b32");
        assert_eq!(BurstConfig::short_only().name(), "b1+b0");
        assert_eq!(BurstConfig::paper_best(), BurstConfig::with_long(32));
    }

    proptest::proptest! {
        /// §5.2 claims: loaded = ⌈c/S2⌉·S2 (when S2 | S1) and unused ≤ S2 bytes.
        #[test]
        fn loaded_bytes_bound(
            c in 0u64..100_000,
            long_pow in 1u32..7, // S1 = 2^pow beats, all multiples of S2=1
        ) {
            let cfg = BurstConfig::with_long(1 << long_pow);
            let d = dram();
            let plan = BurstPlan::plan(c, cfg, &d);
            let short_bytes = cfg.short_beats * d.bus_bytes;
            proptest::prop_assert!(plan.loaded_bytes >= c);
            proptest::prop_assert_eq!(plan.loaded_bytes, c.div_ceil(short_bytes) * short_bytes);
            proptest::prop_assert!(plan.unused_bytes() < short_bytes);
        }

        /// The long pipeline must carry the bulk: shorts never exceed
        /// S1/S2 - 1 commands.
        #[test]
        fn short_count_bounded(
            c in 0u64..1_000_000,
            long_pow in 1u32..7,
        ) {
            let cfg = BurstConfig::with_long(1 << long_pow);
            let plan = BurstPlan::plan(c, cfg, &dram());
            proptest::prop_assert!(plan.n_short <= (cfg.long_beats / cfg.short_beats));
        }

        /// Beats accounting matches commands.
        #[test]
        fn beats_match_commands(c in 0u64..50_000) {
            let plan = BurstPlan::plan(c, BurstConfig::with_long(16), &dram());
            let total: u64 = plan.commands().map(|(b, _)| b).sum();
            proptest::prop_assert_eq!(total, plan.beats());
        }
    }
}
