//! The full experiment harness at quick scale: every table/figure runner
//! must execute and produce a well-formed report — this is what keeps the
//! EXPERIMENTS.md regeneration path from rotting.

use lightrw_bench::{experiments, Opts};
use lightrw_repro as _;

#[test]
fn every_experiment_runs_at_quick_scale() {
    let opts = Opts::quick();
    for (id, runner) in experiments::all() {
        let md = runner(&opts);
        assert!(
            md.starts_with("## "),
            "{id}: report must start with a title"
        );
        assert!(md.contains('|'), "{id}: report must contain a table");
        let data_rows = md
            .lines()
            .filter(|l| l.starts_with('|') && !l.starts_with("|-"))
            .count();
        assert!(data_rows >= 2, "{id}: table has no data rows");
    }
}

#[test]
fn experiment_list_covers_every_paper_artifact() {
    let ids: Vec<&str> = experiments::all().iter().map(|(id, _)| *id).collect();
    for expected in [
        "table1",
        "fig6",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "table3",
        "table4",
        "table5",
        "fig18",
        "ext_cluster",
    ] {
        assert!(ids.contains(&expected), "missing experiment {expected}");
    }
    assert_eq!(ids.len(), 15);
}

#[test]
fn reports_are_deterministic_per_seed() {
    let opts = Opts::quick();
    // Timing-free experiments must render byte-identical reports.
    for id in ["fig6", "fig11", "table5"] {
        let runner = experiments::all()
            .into_iter()
            .find(|(i, _)| *i == id)
            .unwrap()
            .1;
        assert_eq!(runner(&opts), runner(&opts), "{id} not deterministic");
    }
}
