//! Smoke tests for the workspace surface itself: the facade re-exports
//! resolve, the prelude is usable through `lightrw_repro`, and the
//! `quickstart` example runs as a real `cargo run --example` invocation.

use lightrw_repro::lightrw::prelude::*;

#[test]
fn facade_reexports_resolve() {
    // Everything below comes in through `lightrw_repro::lightrw::prelude::*`.
    let graph = GraphBuilder::directed()
        .num_vertices(4)
        .weighted_edges(vec![(0, 1, 1), (1, 2, 2), (2, 3, 1), (3, 0, 1)])
        .build();
    let queries = QuerySet::from_starts(vec![0], 4);
    let report = LightRwSim::new(&graph, &Uniform, LightRwConfig::single_instance()).run(&queries);
    assert_eq!(report.results.len(), 1);
    assert_eq!(report.results.path(0)[0], 0);

    // The embed layer is re-exported at the facade root too.
    let split = lightrw_repro::lightrw_embed::holdout_split(&graph, 0.5, 7);
    assert_eq!(split.train.num_vertices(), 4);
}

#[test]
fn facade_service_layer_resolves() {
    // The multi-tenant serving layer (DESIGN.md §7) through the facade:
    // prelude names (WalkService, JobSpec, ServiceConfig) and the
    // `lightrw::service` / `lightrw::jobspec` module re-exports.
    let graph = GraphBuilder::directed()
        .num_vertices(3)
        .edges(vec![(0, 1), (1, 2), (2, 0)])
        .build();
    let engine = ReferenceEngine::new(&graph, &Uniform, SamplerKind::InverseTransform, 1);
    let workers: Vec<&dyn WalkEngine> = vec![&engine];
    let mut service = WalkService::new(workers, ServiceConfig::default());
    let job = service.submit(JobSpec::tenant(0), QuerySet::from_starts(vec![0], 4));
    service.run_until_idle();
    assert_eq!(service.status(job), JobStatus::Completed);
    assert_eq!(service.take_results(job).unwrap().len(), 1);

    // The deeper module paths resolve too.
    use lightrw_repro::lightrw::jobspec;
    let trace = jobspec::Trace::from_jobs(jobspec::synthetic_trace(2, 1, 4, 5));
    let parsed = jobspec::parse_trace(&jobspec::to_json(&trace)).unwrap();
    assert_eq!(parsed, trace);
    let stats: lightrw_repro::lightrw::service::ServiceStats = service.stats();
    assert_eq!(stats.completed_jobs, 1);
}

#[test]
fn facade_platform_models_resolve() {
    // Deeper, non-prelude paths through the facade.
    use lightrw_repro::lightrw::{self, platform::AppKind};
    let est = lightrw::resources::estimate(&LightRwConfig::default(), AppKind::Node2Vec);
    assert!(est.luts_pct > 0.0);
    let platform = lightrw::platform::U250_PLATFORM;
    assert!(platform.clock_hz > 0.0 && platform.dram_channels > 0);
}

/// `cargo run --example quickstart` must work for a fresh user; run it
/// exactly as the README/docs advertise. The example binary is already
/// built by the time integration tests run, so this is cheap.
#[test]
fn quickstart_example_runs() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let out = std::process::Command::new(cargo)
        .args(["run", "--quiet", "--example", "quickstart"])
        .env(
            "CARGO_TARGET_DIR",
            std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()),
        )
        .output()
        .expect("failed to spawn cargo run --example quickstart");
    assert!(
        out.status.success(),
        "quickstart example failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("throughput"),
        "quickstart output missing expected report lines:\n{stdout}"
    );
}
