//! Cross-engine agreement: the reference oracle, the ThunderRW-like CPU
//! baseline and the accelerator model must sample from the same
//! distribution and emit only valid walks — the property that makes the
//! paper's Fig. 14 comparison meaningful (same answers, different speed).
//!
//! Since the session refactor all three engines also implement
//! `WalkEngine` (DESIGN.md §6), and the second half of this suite pins
//! the batching contract: for every app × sampler kind, driving a
//! session through `&dyn WalkEngine` with a *randomized* `max_steps`
//! schedule reproduces the monolithic `run` bit for bit — the
//! RNG-identity contract of DESIGN.md §5 survives batching.

use lightrw::prelude::*;
use lightrw::rng::stats::{chi_square_counts, chi_square_crit_999};
use lightrw::rng::{Rng, SplitMix64};
use lightrw::walker::path::validate_path;
use lightrw_repro as _;

/// One-step empirical distribution from a weighted fan-out vertex, for an
/// arbitrary engine closure.
fn one_step_counts(n: usize, run: impl Fn(&QuerySet) -> WalkResults) -> Vec<u64> {
    let qs = QuerySet::from_starts(vec![0; n], 1);
    let res = run(&qs);
    let mut counts = vec![0u64; 5];
    for p in res.iter() {
        assert_eq!(p.len(), 2, "one-step walk must have two vertices");
        counts[p[1] as usize] += 1;
    }
    counts
}

fn weighted_fan() -> Graph {
    GraphBuilder::directed()
        .weighted_edges([(0, 1, 2), (0, 2, 3), (0, 3, 5), (0, 4, 10)])
        .num_vertices(5)
        .build()
}

#[test]
fn all_three_engines_sample_the_same_distribution() {
    let g = weighted_fan();
    let probs = [0.0, 2.0, 3.0, 5.0, 10.0];
    let n = 30_000;
    let crit = chi_square_crit_999(3) * 1.2;

    // Reference engine (oracle).
    let counts = one_step_counts(n, |qs| {
        ReferenceEngine::new(&g, &StaticWeighted, SamplerKind::InverseTransform, 1).run(qs)
    });
    let chi2 = chi_square_counts(&counts[..], &probs);
    assert!(chi2 < crit, "reference: chi2 {chi2:.1} {counts:?}");

    // CPU baseline (multi-threaded).
    let counts = one_step_counts(n, |qs| {
        CpuEngine::new(&g, &StaticWeighted, BaselineConfig::default())
            .run(qs)
            .0
    });
    let chi2 = chi_square_counts(&counts[..], &probs);
    assert!(chi2 < crit, "baseline: chi2 {chi2:.1} {counts:?}");

    // Accelerator model (4 instances, parallel WRS + integer test).
    let counts = one_step_counts(n, |qs| {
        LightRwSim::new(&g, &StaticWeighted, LightRwConfig::default())
            .run(qs)
            .results
    });
    let chi2 = chi_square_counts(&counts[..], &probs);
    assert!(chi2 < crit, "hwsim: chi2 {chi2:.1} {counts:?}");
}

#[test]
fn every_engine_emits_only_valid_node2vec_walks() {
    let g = DatasetProfile::orkut().stand_in(9, 3);
    let nv = Node2Vec::paper_params();
    let qs = QuerySet::n_queries(&g, 200, 15, 5);

    let reference = ReferenceEngine::new(&g, &nv, SamplerKind::ParallelWrs { k: 16 }, 7).run(&qs);
    let (baseline, _) = CpuEngine::new(&g, &nv, BaselineConfig::default()).run(&qs);
    let hwsim = LightRwSim::new(&g, &nv, LightRwConfig::default())
        .run(&qs)
        .results;

    for (name, results) in [
        ("reference", &reference),
        ("baseline", &baseline),
        ("hwsim", &hwsim),
    ] {
        assert_eq!(results.len(), qs.len(), "{name}");
        for p in results.iter() {
            validate_path(&g, &nv, p)
                .unwrap_or_else(|e| panic!("{name} produced invalid walk {p:?}: {e:?}"));
        }
    }
}

#[test]
fn every_engine_respects_metapath_relations() {
    let g = DatasetProfile::us_patents().stand_in(9, 11);
    let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
    let qs = QuerySet::n_queries(&g, 300, 5, 2);

    for (name, results) in [
        (
            "reference",
            ReferenceEngine::new(&g, &mp, SamplerKind::Alias, 3).run(&qs),
        ),
        (
            "baseline",
            CpuEngine::new(&g, &mp, BaselineConfig::default())
                .run(&qs)
                .0,
        ),
        (
            "hwsim",
            LightRwSim::new(&g, &mp, LightRwConfig::default())
                .run(&qs)
                .results,
        ),
    ] {
        for p in results.iter() {
            validate_path(&g, &mp, p)
                .unwrap_or_else(|e| panic!("{name} violated the metapath: {p:?}: {e:?}"));
        }
    }
}

/// Drive any engine through the object-safe session layer with a
/// pseudo-random batch schedule (batch sizes 1..=max_batch).
fn run_batched(
    engine: &dyn WalkEngine,
    qs: &QuerySet,
    rng: &mut SplitMix64,
    max_batch: u64,
) -> WalkResults {
    let mut results = WalkResults::new();
    let mut session = engine.start_session(qs);
    while !session.finished() {
        session.advance(1 + rng.gen_range(max_batch), &mut results);
    }
    results
}

const ALL_SAMPLERS: [SamplerKind; 7] = [
    SamplerKind::InverseTransform,
    SamplerKind::Alias,
    SamplerKind::SequentialWrs,
    SamplerKind::ParallelWrs { k: 4 },
    SamplerKind::ParallelWrs { k: 16 },
    SamplerKind::Rejection,
    SamplerKind::AExpJ,
];

#[test]
fn randomized_batches_replay_monolithic_walks_for_every_app_and_sampler() {
    // The acceptance property of the session refactor: for every
    // app × sampler kind and every engine, a batched session (any
    // max_steps schedule) is bit-identical to the seed's monolithic run.
    let g = generators::rmat_dataset(8, 14);
    let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
    let nv = Node2Vec::paper_params();
    let apps: [&dyn WalkApp; 4] = [&Uniform, &StaticWeighted, &mp, &nv];
    let qs = QuerySet::per_nonisolated_vertex(&g, 6, 4);
    let mut batch_rng = SplitMix64::new(0xBA7C);

    for app in apps {
        // Reference + CPU take every sampler kind...
        for kind in ALL_SAMPLERS {
            let reference = ReferenceEngine::new(&g, app, kind, 21);
            let whole = reference.run(&qs);
            let batched = run_batched(&reference, &qs, &mut batch_rng, 19);
            assert_eq!(whole, batched, "reference {} {:?}", app.name(), kind);

            let cfg = BaselineConfig {
                threads: 3,
                sampler: kind,
                ..Default::default()
            };
            let cpu = CpuEngine::new(&g, app, cfg);
            let (whole, _) = cpu.run(&qs);
            let batched = run_batched(&cpu, &qs, &mut batch_rng, 19);
            assert_eq!(whole, batched, "cpu {} {:?}", app.name(), kind);
        }
        // ...the accelerator is parallel-WRS by construction.
        let sim = LightRwSim::new(&g, app, LightRwConfig::default());
        let whole = sim.run(&qs).results;
        let batched = run_batched(&sim, &qs, &mut batch_rng, 19);
        assert_eq!(whole, batched, "sim {}", app.name());
    }
}

/// The pre-lane CPU engine's inner loop, inlined as an oracle: one
/// `HotStepper` on chunk 0's RNG stream (`mix64(seed ^ 0·φ)` =
/// `mix64(seed)`) driving a walker-at-a-time cursor + `swap_remove`
/// sweep. This is the sequential semantics the step-centric lanes must
/// replay exactly — kept here, independent of `WorkerLane`, so a lane
/// regression (ring order, seed derivation, prefetch gone wrong) cannot
/// hide by changing oracle and engine in lockstep.
fn sequential_oracle(
    g: &Graph,
    app: &dyn WalkApp,
    kind: SamplerKind,
    seed: u64,
    qs: &QuerySet,
) -> WalkResults {
    use lightrw::rng::splitmix::mix64;
    use lightrw::walker::program::{StepOutcome, WalkState};
    let program = qs.program();
    let queries = qs.queries();
    let mut stepper = HotStepper::new(app, kind, mix64(seed));
    stepper.reserve(g.max_degree() as usize);

    let mut cur: Vec<u32> = queries.iter().map(|q| q.start).collect();
    let mut prev: Vec<Option<u32>> = vec![None; queries.len()];
    let mut taken = vec![0u32; queries.len()];
    let mut seg = vec![0u32; queries.len()];
    let mut paths: Vec<Vec<u32>> = queries.iter().map(|q| vec![q.start]).collect();

    let mut active: Vec<usize> = (0..queries.len()).collect();
    let mut cursor = 0usize;
    while !active.is_empty() {
        if cursor >= active.len() {
            cursor = 0;
        }
        let qi = active[cursor];
        let q = queries[qi];
        let mut st = WalkState {
            cur: cur[qi],
            prev: prev[qi],
            taken: taken[qi],
            seg: seg[qi],
        };
        let outcome = program.step_attempt(g, app, &mut stepper, &q, &mut st);
        cur[qi] = st.cur;
        prev[qi] = st.prev;
        taken[qi] = st.taken;
        seg[qi] = st.seg;
        let done = match outcome {
            StepOutcome::Moved { done, .. } | StepOutcome::Teleported { done, .. } => {
                paths[qi].push(outcome.appended(q.start).expect("advancing outcome"));
                done
            }
            StepOutcome::DeadEnd | StepOutcome::TargetAtStart => true,
        };
        if done {
            active.swap_remove(cursor);
        } else {
            cursor += 1;
        }
    }
    let mut results = WalkResults::new();
    for (i, p) in paths.into_iter().enumerate() {
        results.emit(i as u32, &p);
    }
    results
}

#[test]
fn single_lane_engine_replays_the_sequential_oracle_for_every_app_and_sampler() {
    // The lane refactor's regression pin: with threads = 1, the
    // interleaved Gather–Move–Update lane must be bit-identical to the
    // pre-refactor sequential walk loop for every app × sampler —
    // including Rejection, whose RNG stream differs from inverse
    // transform only inside a step, never across walkers.
    let g = generators::rmat_dataset(8, 14);
    let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
    let nv = Node2Vec::paper_params();
    let apps: [&dyn WalkApp; 4] = [&Uniform, &StaticWeighted, &mp, &nv];
    let qs = QuerySet::per_nonisolated_vertex(&g, 6, 4);
    let seed = 0xC0FFEE;
    for app in apps {
        for kind in ALL_SAMPLERS {
            let oracle = sequential_oracle(&g, app, kind, seed, &qs);
            let cfg = BaselineConfig {
                threads: 1,
                sampler: kind,
                seed,
            };
            let (lanes, _) = CpuEngine::new(&g, app, cfg).run(&qs);
            assert_eq!(oracle, lanes, "{} {:?}", app.name(), kind);
        }
    }
}

#[test]
fn sessions_emit_each_path_exactly_once_across_backends() {
    let g = DatasetProfile::youtube().stand_in(8, 5);
    let qs = QuerySet::per_nonisolated_vertex(&g, 5, 3);
    let engines: Vec<Box<dyn WalkEngine + '_>> = vec![
        Box::new(ReferenceEngine::new(
            &g,
            &Uniform,
            SamplerKind::InverseTransform,
            1,
        )),
        Box::new(CpuEngine::new(&g, &Uniform, BaselineConfig::default())),
        Box::new(LightRwSim::new(&g, &Uniform, LightRwConfig::default())),
    ];
    for engine in &engines {
        // Ids must arrive dense and ascending, once each.
        let mut next_expected = 0u32;
        let mut sink = |id: u32, path: &[u32]| {
            assert_eq!(
                id,
                next_expected,
                "{}: out-of-order emission",
                engine.label()
            );
            assert!(!path.is_empty());
            next_expected += 1;
        };
        let mut session = engine.start_session(&qs);
        while !session.finished() {
            session.advance(37, &mut sink);
        }
        assert_eq!(next_expected as usize, qs.len(), "{}", engine.label());
        // Progress counters agree with the emission record.
        assert_eq!(session.paths_completed(), qs.len());
    }
}

#[test]
fn cancellation_flushes_partial_walks_on_every_backend() {
    let g = DatasetProfile::youtube().stand_in(8, 9);
    let qs = QuerySet::per_nonisolated_vertex(&g, 60, 6);
    let engines: Vec<Box<dyn WalkEngine + '_>> = vec![
        Box::new(ReferenceEngine::new(
            &g,
            &Uniform,
            SamplerKind::InverseTransform,
            2,
        )),
        Box::new(CpuEngine::new(&g, &Uniform, BaselineConfig::default())),
        Box::new(LightRwSim::new(&g, &Uniform, LightRwConfig::default())),
    ];
    for engine in &engines {
        let mut results = WalkResults::new();
        let mut session = engine.start_session(&qs);
        session.advance(50, &mut results);
        let progress = session.cancel(&mut results);
        assert!(progress.finished, "{}", engine.label());
        assert_eq!(results.len(), qs.len(), "{}", engine.label());
        for p in results.iter() {
            validate_path(&g, &Uniform, p)
                .unwrap_or_else(|e| panic!("{}: invalid partial walk: {e:?}", engine.label()));
        }
        // Cancelled early: strictly fewer steps than the full workload.
        assert!(
            results.total_steps() < qs.total_steps(),
            "{}",
            engine.label()
        );
    }
}

#[test]
fn empty_batch_cancel_is_identical_across_backends() {
    // Regression pin for the cancel-before-first-`advance` contract
    // (DESIGN.md §6): with zero batches executed, cancel must flush one
    // start-vertex-only path per query — the *same* result set on every
    // backend, with identical BatchProgress, zero steps, and zero model
    // time where a timing model exists. The serving layer relies on this
    // when a queued job is cancelled before its first scheduler turn.
    let g = DatasetProfile::youtube().stand_in(8, 2);
    let qs = QuerySet::per_nonisolated_vertex(&g, 30, 7);
    let engines: Vec<Box<dyn WalkEngine + '_>> = vec![
        Box::new(ReferenceEngine::new(
            &g,
            &Uniform,
            SamplerKind::InverseTransform,
            4,
        )),
        Box::new(CpuEngine::new(&g, &Uniform, BaselineConfig::default())),
        Box::new(LightRwSim::new(&g, &Uniform, LightRwConfig::default())),
    ];
    let mut flushes: Vec<WalkResults> = Vec::new();
    for engine in &engines {
        let mut session = engine.start_session(&qs);
        let mut results = WalkResults::new();
        let progress = session.cancel(&mut results);
        let label = engine.label();
        assert!(progress.finished, "{label}");
        assert_eq!(progress.steps, 0, "{label}");
        assert_eq!(progress.paths_completed, qs.len(), "{label}");
        assert_eq!(session.steps_done(), 0, "{label}");
        assert_eq!(session.paths_completed(), qs.len(), "{label}");
        if let Some(model_s) = session.model_seconds() {
            assert_eq!(model_s, 0.0, "{label}: no work, no model time");
        }
        // Idempotent: a second cancel emits nothing more.
        let again = session.cancel(&mut results);
        assert_eq!(again.paths_completed, 0, "{label}");
        assert_eq!(results.len(), qs.len(), "{label}");
        flushes.push(results);
    }
    // The flush is bit-identical across backends: [start] per query.
    assert_eq!(flushes[0], flushes[1]);
    assert_eq!(flushes[1], flushes[2]);
    for (q, p) in qs.queries().iter().zip(flushes[0].iter()) {
        assert_eq!(p, &[q.start]);
    }
}

/// Validate a program walk: every hop is either a sampleable edge (the
/// plain `validate_path` rule) or a teleport back to the walk's start
/// vertex (restart draws and dead-end restarts re-enter there), and the
/// path respects the step cap.
fn validate_program_path(g: &Graph, app: &dyn WalkApp, path: &[u32], start: u32, cap: u32) {
    assert!(!path.is_empty() && path[0] == start);
    assert!(path.len() as u32 <= cap + 1, "cap exceeded: {path:?}");
    let mut seg_start = 0usize;
    for i in 1..path.len() {
        if path[i] == start && !g.has_edge(path[i - 1], path[i]) {
            // Teleport: the segment so far must itself be a valid walk.
            validate_path(g, app, &path[seg_start..i]).unwrap();
            seg_start = i;
        }
    }
    validate_path(g, app, &path[seg_start..]).unwrap();
}

#[test]
fn program_sessions_replay_monolithic_runs_on_every_engine() {
    // The batching contract extends to every program shape: restart
    // draws, dead-end restarts and target termination consume the RNG in
    // a fixed per-attempt order (DESIGN.md §8), so any max_steps schedule
    // reproduces the monolithic run bit for bit on all three backends.
    let g = generators::rmat_dataset(8, 14);
    let targets = std::sync::Arc::new(lightrw::walker::NeighborBitset::from_members(
        g.num_vertices(),
        (0..g.num_vertices()).step_by(17),
    ));
    let programs = [
        WalkProgram::ppr(0.2, 9),
        WalkProgram::ppr(1.0, 4),
        WalkProgram::fixed(9).with_dead_end(DeadEndPolicy::Restart),
        WalkProgram::ppr(0.3, 12).with_dead_end(DeadEndPolicy::Restart),
        WalkProgram::fixed(20).with_targets(std::sync::Arc::clone(&targets)),
        WalkProgram::ppr(0.15, 30).with_targets(targets),
    ];
    let nv = Node2Vec::paper_params();
    let apps: [&dyn WalkApp; 2] = [&Uniform, &nv];
    let mut batch_rng = SplitMix64::new(0x5150);
    for program in &programs {
        let qs = QuerySet::per_nonisolated_vertex(&g, 1, 4).with_program(program.clone());
        for app in apps {
            for kind in [
                SamplerKind::InverseTransform,
                SamplerKind::ParallelWrs { k: 8 },
            ] {
                let reference = ReferenceEngine::new(&g, app, kind, 21);
                let whole = reference.run(&qs);
                let batched = run_batched(&reference, &qs, &mut batch_rng, 7);
                assert_eq!(whole, batched, "reference {program} {}", app.name());
                for (q, p) in qs.queries().iter().zip(whole.iter()) {
                    validate_program_path(&g, app, p, q.start, q.length);
                }

                let cfg = BaselineConfig {
                    threads: 3,
                    sampler: kind,
                    ..Default::default()
                };
                let cpu = CpuEngine::new(&g, app, cfg);
                let (whole, _) = cpu.run(&qs);
                let batched = run_batched(&cpu, &qs, &mut batch_rng, 7);
                assert_eq!(whole, batched, "cpu {program} {}", app.name());
            }
            let sim = LightRwSim::new(&g, app, LightRwConfig::default());
            let whole = sim.run(&qs).results;
            let batched = run_batched(&sim, &qs, &mut batch_rng, 7);
            assert_eq!(whole, batched, "sim {program} {}", app.name());
            for (q, p) in qs.queries().iter().zip(whole.iter()) {
                validate_program_path(&g, app, p, q.start, q.length);
            }
        }
    }
}

#[test]
fn fixed_program_query_sets_are_the_pre_program_workload() {
    // The acceptance pin for the redesign: a QuerySet built by the
    // length-based constructors carries WalkProgram::fixed and produces
    // byte-identical results to any explicitly-attached fixed program —
    // there is no hidden behavioral fork between the two spellings.
    let g = generators::rmat_dataset(8, 3);
    let implicit = QuerySet::per_nonisolated_vertex(&g, 6, 4);
    let explicit = implicit.clone().with_program(WalkProgram::fixed(6));
    assert!(implicit.program().is_fixed_length());
    for engine in [
        Box::new(ReferenceEngine::new(
            &g,
            &Uniform,
            SamplerKind::InverseTransform,
            9,
        )) as Box<dyn WalkEngine + '_>,
        Box::new(CpuEngine::new(&g, &Uniform, BaselineConfig::default())),
        Box::new(LightRwSim::new(&g, &Uniform, LightRwConfig::default())),
    ] {
        assert_eq!(
            engine.run_collected(&implicit),
            engine.run_collected(&explicit),
            "{}",
            engine.label()
        );
    }
}

#[test]
fn ppr_walks_respect_the_cap_and_teleport_home_on_every_engine() {
    let g = DatasetProfile::youtube().stand_in(8, 4);
    let program = WalkProgram::ppr(0.25, 14);
    let qs = QuerySet::n_queries(&g, 200, 1, 6).with_program(program);
    let nv = Node2Vec::paper_params();
    let engines: Vec<Box<dyn WalkEngine + '_>> = vec![
        Box::new(ReferenceEngine::new(
            &g,
            &nv,
            SamplerKind::ParallelWrs { k: 8 },
            3,
        )),
        Box::new(CpuEngine::new(&g, &nv, BaselineConfig::default())),
        Box::new(LightRwSim::new(&g, &nv, LightRwConfig::default())),
    ];
    for engine in &engines {
        let results = engine.run_collected(&qs);
        assert_eq!(results.len(), qs.len(), "{}", engine.label());
        let mut teleports = 0usize;
        for (q, p) in qs.queries().iter().zip(results.iter()) {
            validate_program_path(&g, &nv, p, q.start, q.length);
            teleports += (1..p.len())
                .filter(|&i| p[i] == q.start && !g.has_edge(p[i - 1], p[i]))
                .count();
        }
        // With α = 0.25 over 200 capped walks, restarts are plentiful.
        assert!(
            teleports > 50,
            "{}: only {teleports} teleports",
            engine.label()
        );
    }
}

#[test]
fn packed_graph_walks_are_bit_identical_to_in_memory_for_every_combo() {
    // The out-of-core acceptance pin (DESIGN.md §10): a graph streamed
    // through the external-sort pack pipeline and loaded back — mmap'd
    // *and* via the heap fallback — must drive every engine to walks
    // bit-identical to the same recipe built in memory, for every
    // app × sampler kind. The chunk size is tiny so the pack spills and
    // merges runs even at this scale; a divergence anywhere in the
    // record codec, merge order, prefix reconstruction or the
    // borrowed-section adjacency views would break some combination.
    use lightrw::graph::pack::{pack_rmat_dataset, PackOptions};
    use lightrw::graph::packed::load_packed;
    use lightrw::graph::LoadMode;

    let (scale, seed) = (8u32, 14u64);
    let mem = generators::rmat_dataset(scale, seed);
    let path = std::env::temp_dir().join(format!(
        "lightrw_agreement_{}_{scale}_{seed}.lrwpak",
        std::process::id()
    ));
    let opts = PackOptions {
        chunk_records: 512,
        ..Default::default()
    };
    let stats = pack_rmat_dataset(scale, seed, &path, &opts).expect("pack rmat");
    assert!(stats.runs > 1, "chunk 512 must force spilled runs");

    let auto = load_packed(&path, LoadMode::Auto).expect("mmap load");
    let heap = load_packed(&path, LoadMode::Heap).expect("heap load");
    std::fs::remove_file(&path).expect("remove temp pack file");
    #[cfg(target_os = "linux")]
    assert!(auto.mapped, "Auto must map on Linux");
    assert!(!heap.mapped);
    assert!(
        auto.graph.has_prefix_cache() && heap.graph.has_prefix_cache(),
        "the packed prefix sections must load as a live cache"
    );

    let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
    let nv = Node2Vec::paper_params();
    let apps: [&dyn WalkApp; 4] = [&Uniform, &StaticWeighted, &mp, &nv];
    let qs = QuerySet::per_nonisolated_vertex(&mem, 6, 4);
    for app in apps {
        for kind in ALL_SAMPLERS {
            let expected = ReferenceEngine::new(&mem, app, kind, 21).run(&qs);
            for (label, g) in [("mmap", &auto.graph), ("heap", &heap.graph)] {
                let got = ReferenceEngine::new(g, app, kind, 21).run(&qs);
                assert_eq!(expected, got, "reference/{label} {} {:?}", app.name(), kind);
            }

            let cfg = BaselineConfig {
                threads: 3,
                sampler: kind,
                ..Default::default()
            };
            let (expected, _) = CpuEngine::new(&mem, app, cfg).run(&qs);
            for (label, g) in [("mmap", &auto.graph), ("heap", &heap.graph)] {
                let (got, _) = CpuEngine::new(g, app, cfg).run(&qs);
                assert_eq!(expected, got, "cpu/{label} {} {:?}", app.name(), kind);
            }
        }
        let expected = LightRwSim::new(&mem, app, LightRwConfig::default())
            .run(&qs)
            .results;
        for (label, g) in [("mmap", &auto.graph), ("heap", &heap.graph)] {
            let got = LightRwSim::new(g, app, LightRwConfig::default())
                .run(&qs)
                .results;
            assert_eq!(expected, got, "sim/{label} {}", app.name());
        }
    }
}

#[test]
fn step_counts_agree_between_results_and_reports() {
    let g = DatasetProfile::youtube().stand_in(9, 1);
    let qs = QuerySet::per_nonisolated_vertex(&g, 6, 4);

    let sim = LightRwSim::new(&g, &Uniform, LightRwConfig::default()).run(&qs);
    assert_eq!(sim.steps, sim.results.total_steps());

    let (res, stats) = CpuEngine::new(&g, &Uniform, BaselineConfig::default()).run(&qs);
    assert_eq!(stats.steps, res.total_steps());
}
