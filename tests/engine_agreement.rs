//! Cross-engine agreement: the reference oracle, the ThunderRW-like CPU
//! baseline and the accelerator model must sample from the same
//! distribution and emit only valid walks — the property that makes the
//! paper's Fig. 14 comparison meaningful (same answers, different speed).

use lightrw::prelude::*;
use lightrw::rng::stats::{chi_square_counts, chi_square_crit_999};
use lightrw::walker::path::validate_path;
use lightrw_repro as _;

/// One-step empirical distribution from a weighted fan-out vertex, for an
/// arbitrary engine closure.
fn one_step_counts(n: usize, run: impl Fn(&QuerySet) -> WalkResults) -> Vec<u64> {
    let qs = QuerySet::from_starts(vec![0; n], 1);
    let res = run(&qs);
    let mut counts = vec![0u64; 5];
    for p in res.iter() {
        assert_eq!(p.len(), 2, "one-step walk must have two vertices");
        counts[p[1] as usize] += 1;
    }
    counts
}

fn weighted_fan() -> Graph {
    GraphBuilder::directed()
        .weighted_edges([(0, 1, 2), (0, 2, 3), (0, 3, 5), (0, 4, 10)])
        .num_vertices(5)
        .build()
}

#[test]
fn all_three_engines_sample_the_same_distribution() {
    let g = weighted_fan();
    let probs = [0.0, 2.0, 3.0, 5.0, 10.0];
    let n = 30_000;
    let crit = chi_square_crit_999(3) * 1.2;

    // Reference engine (oracle).
    let counts = one_step_counts(n, |qs| {
        ReferenceEngine::new(&g, &StaticWeighted, SamplerKind::InverseTransform, 1).run(qs)
    });
    let chi2 = chi_square_counts(&counts[..], &probs);
    assert!(chi2 < crit, "reference: chi2 {chi2:.1} {counts:?}");

    // CPU baseline (multi-threaded).
    let counts = one_step_counts(n, |qs| {
        CpuEngine::new(&g, &StaticWeighted, BaselineConfig::default())
            .run(qs)
            .0
    });
    let chi2 = chi_square_counts(&counts[..], &probs);
    assert!(chi2 < crit, "baseline: chi2 {chi2:.1} {counts:?}");

    // Accelerator model (4 instances, parallel WRS + integer test).
    let counts = one_step_counts(n, |qs| {
        LightRwSim::new(&g, &StaticWeighted, LightRwConfig::default())
            .run(qs)
            .results
    });
    let chi2 = chi_square_counts(&counts[..], &probs);
    assert!(chi2 < crit, "hwsim: chi2 {chi2:.1} {counts:?}");
}

#[test]
fn every_engine_emits_only_valid_node2vec_walks() {
    let g = DatasetProfile::orkut().stand_in(9, 3);
    let nv = Node2Vec::paper_params();
    let qs = QuerySet::n_queries(&g, 200, 15, 5);

    let reference = ReferenceEngine::new(&g, &nv, SamplerKind::ParallelWrs { k: 16 }, 7).run(&qs);
    let (baseline, _) = CpuEngine::new(&g, &nv, BaselineConfig::default()).run(&qs);
    let hwsim = LightRwSim::new(&g, &nv, LightRwConfig::default())
        .run(&qs)
        .results;

    for (name, results) in [
        ("reference", &reference),
        ("baseline", &baseline),
        ("hwsim", &hwsim),
    ] {
        assert_eq!(results.len(), qs.len(), "{name}");
        for p in results.iter() {
            validate_path(&g, &nv, p)
                .unwrap_or_else(|e| panic!("{name} produced invalid walk {p:?}: {e:?}"));
        }
    }
}

#[test]
fn every_engine_respects_metapath_relations() {
    let g = DatasetProfile::us_patents().stand_in(9, 11);
    let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
    let qs = QuerySet::n_queries(&g, 300, 5, 2);

    for (name, results) in [
        (
            "reference",
            ReferenceEngine::new(&g, &mp, SamplerKind::Alias, 3).run(&qs),
        ),
        (
            "baseline",
            CpuEngine::new(&g, &mp, BaselineConfig::default())
                .run(&qs)
                .0,
        ),
        (
            "hwsim",
            LightRwSim::new(&g, &mp, LightRwConfig::default())
                .run(&qs)
                .results,
        ),
    ] {
        for p in results.iter() {
            validate_path(&g, &mp, p)
                .unwrap_or_else(|e| panic!("{name} violated the metapath: {p:?}: {e:?}"));
        }
    }
}

#[test]
fn step_counts_agree_between_results_and_reports() {
    let g = DatasetProfile::youtube().stand_in(9, 1);
    let qs = QuerySet::per_nonisolated_vertex(&g, 6, 4);

    let sim = LightRwSim::new(&g, &Uniform, LightRwConfig::default()).run(&qs);
    assert_eq!(sim.steps, sim.results.total_steps());

    let (res, stats) = CpuEngine::new(&g, &Uniform, BaselineConfig::default()).run(&qs);
    assert_eq!(stats.steps, res.total_steps());
}
