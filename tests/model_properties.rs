//! Property-based tests over the accelerator model: for arbitrary graphs,
//! workloads and configurations, the simulator must uphold its structural
//! invariants (valid walks, conservation of queries, monotone timing).

use lightrw::prelude::*;
use lightrw::walker::path::validate_path;
use lightrw_repro as _;
use proptest::prelude::*;

/// Strategy: a random small directed graph as an edge list.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2u32..40,
        proptest::collection::vec((0u32..40, 0u32..40, 1u32..20), 1..120),
    )
        .prop_map(|(extra, edges)| {
            GraphBuilder::directed()
                .num_vertices(40 + extra as usize)
                .weighted_edges(edges)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hwsim_walks_are_always_valid(
        g in arb_graph(),
        len in 1u32..12,
        k in prop_oneof![Just(1usize), Just(4), Just(16)],
        inflight in prop_oneof![Just(1usize), Just(8), Just(64)],
        seed in 0u64..1000,
    ) {
        let starts = g.non_isolated_vertices();
        prop_assume!(!starts.is_empty());
        let qs = QuerySet::from_starts(starts, len);
        let cfg = LightRwConfig {
            k,
            max_inflight: inflight,
            instances: 2,
            seed,
            ..LightRwConfig::default()
        };
        let report = LightRwSim::new(&g, &StaticWeighted, cfg).run(&qs);
        // Conservation: every query returns a path starting at its start.
        prop_assert_eq!(report.results.len(), qs.len());
        for (i, q) in qs.queries().iter().enumerate() {
            let p = report.results.path(i);
            prop_assert_eq!(p[0], q.start);
            prop_assert!(p.len() as u32 <= q.length + 1);
            validate_path(&g, &StaticWeighted, p).unwrap();
        }
        // Accounting: steps match, cycles positive when work happened.
        prop_assert_eq!(report.steps, report.results.total_steps());
        if report.steps > 0 {
            prop_assert!(report.cycles > 0);
            let lat_max = report.latencies.iter().copied().max().unwrap();
            prop_assert!(lat_max <= report.cycles);
        }
    }

    #[test]
    fn cycles_monotone_in_walk_length(
        seed in 0u64..50,
        len in 2u32..10,
    ) {
        let g = lightrw::graph::generators::rmat_dataset(8, seed);
        prop_assume!(!g.non_isolated_vertices().is_empty());
        let short = QuerySet::per_nonisolated_vertex(&g, len - 1, 3);
        let long = QuerySet::per_nonisolated_vertex(&g, len, 3);
        let cfg = LightRwConfig::single_instance();
        let a = LightRwSim::new(&g, &Uniform, cfg).run(&short);
        let b = LightRwSim::new(&g, &Uniform, cfg).run(&long);
        // More requested steps can never *reduce* executed steps.
        prop_assert!(b.steps >= a.steps);
    }

    #[test]
    fn dram_traffic_scales_with_work(
        seed in 0u64..50,
    ) {
        let g = lightrw::graph::generators::rmat_dataset(9, seed);
        let small = QuerySet::n_queries(&g, 64, 4, 1);
        let big = QuerySet::n_queries(&g, 512, 4, 1);
        let cfg = LightRwConfig::single_instance();
        let a = LightRwSim::new(&g, &Uniform, cfg).run(&small);
        let b = LightRwSim::new(&g, &Uniform, cfg).run(&big);
        prop_assert!(b.dram_total().bytes > a.dram_total().bytes);
        // Valid-data ratio is a property of the graph + burst config, not
        // the workload size: must stay within a tight band.
        let (ra, rb) = (a.dram_total().valid_ratio(), b.dram_total().valid_ratio());
        prop_assert!((ra - rb).abs() < 0.25, "valid ratio drifted: {ra} vs {rb}");
    }

    #[test]
    fn baseline_and_hwsim_agree_on_reachability(
        edges in proptest::collection::vec((0u32..20, 0u32..20), 1..60),
        seed in 0u64..100,
    ) {
        // Walks can only visit vertices reachable from the start — same
        // closure for every engine.
        let g = GraphBuilder::directed().num_vertices(20).edges(edges).build();
        let starts = g.non_isolated_vertices();
        prop_assume!(!starts.is_empty());
        let qs = QuerySet::from_starts(vec![starts[0]], 10);
        let reach = reachable(&g, starts[0]);
        let sim = LightRwSim::new(&g, &Uniform, LightRwConfig {
            seed,
            ..LightRwConfig::single_instance()
        }).run(&qs);
        for &v in sim.results.path(0) {
            prop_assert!(reach[v as usize], "visited unreachable vertex {v}");
        }
    }
}

/// Simple BFS closure.
fn reachable(g: &Graph, start: u32) -> Vec<bool> {
    let mut seen = vec![false; g.num_vertices()];
    let mut stack = vec![start];
    seen[start as usize] = true;
    while let Some(v) = stack.pop() {
        for &n in g.neighbors(v) {
            if !seen[n as usize] {
                seen[n as usize] = true;
                stack.push(n);
            }
        }
    }
    seen
}
