//! Property tests for the multi-tenant service layer (DESIGN.md §7).
//!
//! Random job mixes — tenants, weights, workloads, quanta, quota budgets
//! and cancel points — must always preserve the serving invariants:
//!
//! 1. **Exactly-once, id-ordered emission per job**: every job's sink
//!    receives query ids `0..n`, dense and ascending, whether the job
//!    completes, is cancelled mid-flight, or is cancelled while still
//!    queued.
//! 2. **Tenant isolation**: cancelling one tenant's jobs never drops,
//!    duplicates or truncates another tenant's emissions, and never
//!    changes another job's terminal status.
//! 3. **Liveness**: whatever the quota budget, the scheduler drains every
//!    job to a terminal state in bounded turns (no admission deadlock).
//! 4. **Paths stay valid**: cancelled jobs flush walk *prefixes* — every
//!    flushed path still validates against the app's weight rules.
//!
//! The vendored proptest stand-in is deterministic (fixed entropy, no
//! shrinking), so failures reproduce exactly by case index.

use std::cell::RefCell;
use std::rc::Rc;

use lightrw::prelude::*;
use lightrw::service::{JobSpec, ServiceConfig, WalkService};
use lightrw::walker::path::validate_path;
use lightrw_repro as _;
use proptest::collection::vec;
use proptest::prelude::*;

/// One generated job: (tenant, weight, queries, length, start-seed).
type GenJob = (u32, u32, usize, u32, u64);

/// Per-job emission log captured by a streaming sink.
#[derive(Default)]
struct EmissionLog {
    ids: Vec<u32>,
    paths: Vec<Vec<u32>>,
}

fn job_strategy() -> impl Strategy<Value = GenJob> {
    (0u32..3, 1u32..4, 1usize..6, 1u32..9, 0u64..1000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_job_mixes_preserve_service_invariants(
        jobs in vec(job_strategy(), 1..8),
        cancels in vec((0usize..8, 0usize..25), 0..4),
        quantum in 1u64..40,
        budget_scale in 1u64..30,
        workers in 1usize..3,
    ) {
        let g = lightrw::graph::generators::rmat_dataset(6, 13);
        // A mixed-backend pool: the reference oracle plus a 2-thread CPU
        // engine, exercised through the same object-safe seam.
        let reference = ReferenceEngine::new(&g, &Uniform, SamplerKind::InverseTransform, 5);
        let cpu = CpuEngine::new(
            &g,
            &Uniform,
            BaselineConfig { threads: 2, ..Default::default() },
        );
        let pool: Vec<&dyn WalkEngine> = [&reference as &dyn WalkEngine, &cpu]
            .into_iter()
            .cycle()
            .take(workers)
            .collect();
        let mut service = WalkService::new(
            pool,
            ServiceConfig {
                quantum,
                // Sometimes generous, sometimes tight enough to queue
                // several jobs behind the per-tenant budget.
                tenant_pending_steps: budget_scale * 4,
            },
        );

        // Submit every job with a recording streaming sink.
        let mut handles = Vec::new();
        for &(tenant, weight, queries, length, seed) in &jobs {
            let starts: Vec<u32> = (0..queries)
                .map(|i| {
                    let noniso = g.non_isolated_vertices();
                    noniso[(seed as usize + i) % noniso.len()]
                })
                .collect();
            let qs = QuerySet::from_starts(starts, length);
            let log = Rc::new(RefCell::new(EmissionLog::default()));
            let sink_log = Rc::clone(&log);
            let sink = Box::new(move |id: u32, path: &[u32]| {
                let mut log = sink_log.borrow_mut();
                log.ids.push(id);
                log.paths.push(path.to_vec());
            });
            let id = service.submit_streaming(JobSpec::tenant(tenant).weight(weight), qs, sink);
            handles.push((id, queries, tenant, log));
        }

        // Interleave ticks with the generated cancellations (job indices
        // wrap onto the submitted set; ticks may hit any phase: queued,
        // running, already terminal).
        let mut cancels = cancels.clone();
        cancels.sort_by_key(|&(_, at_tick)| at_tick);
        let mut cancelled_jobs = Vec::new();
        let mut next_cancel = 0;
        for tick_no in 0..25usize {
            while next_cancel < cancels.len() && cancels[next_cancel].1 <= tick_no {
                let (raw, _) = cancels[next_cancel];
                let (id, _, tenant, _) = handles[raw % handles.len()];
                if !service.status(id).is_terminal() {
                    cancelled_jobs.push((id, tenant));
                }
                service.cancel(id);
                next_cancel += 1;
            }
            service.tick();
        }
        // Liveness: draining must terminate in bounded turns whatever the
        // quota/cancel interleaving did.
        let mut guard = 0u32;
        while !service.is_idle() {
            service.tick();
            guard += 1;
            prop_assert!(guard < 1_000_000, "scheduler failed to drain");
        }

        for (id, queries, _tenant, log) in &handles {
            let status = service.status(*id);
            prop_assert!(status.is_terminal(), "job not terminal at idle");
            let log = log.borrow();
            // Invariant 1: exactly-once, query-id-ordered emission.
            let expect: Vec<u32> = (0..*queries as u32).collect();
            prop_assert_eq!(&log.ids, &expect);
            // Invariant 2/4: cancellation only ever shortens paths, and
            // what is flushed is still a valid walk prefix.
            for path in &log.paths {
                prop_assert!(!path.is_empty());
                prop_assert!(validate_path(&g, &Uniform, path).is_ok());
            }
            // Isolation: a job is Cancelled only if *it* was cancelled.
            if status == JobStatus::Cancelled {
                prop_assert!(
                    cancelled_jobs.iter().any(|(c, _)| c == id),
                    "job cancelled without a client cancel"
                );
            } else {
                prop_assert_eq!(status, JobStatus::Completed);
            }
        }
        prop_assert_eq!(service.stats().total_steps, {
            let s: u64 = handles
                .iter()
                .map(|(_, _, _, log)| {
                    log.borrow().paths.iter().map(|p| p.len() as u64 - 1).sum::<u64>()
                })
                .sum();
            s
        });
    }

    #[test]
    fn every_walk_program_terminates_and_emits_exactly_once(
        // The stand-in proptest has no Option strategies: 0 encodes None
        // for alpha (fixed-length program), strides < 3 encode "no
        // targets", cancel points ≥ 30 encode "never cancel".
        alpha_pct in 0u32..=100,
        max in 1u32..12,
        restart_sel in 0u32..2,
        target_stride_raw in 0usize..9,
        n_queries in 1usize..6,
        start_seed in 0u64..500,
        budgets in vec(1u64..20, 1..30),
        cancel_raw in 0usize..60,
        engine_pick in 0usize..3,
    ) {
        let alpha_bits = (alpha_pct > 0).then_some(alpha_pct);
        let restart_dead_ends = restart_sel == 1;
        let target_stride = (target_stride_raw >= 3).then_some(target_stride_raw);
        let cancel_at = (cancel_raw < 30).then_some(cancel_raw);
        // The program-termination half of the redesign (DESIGN.md §8):
        // for a *random point of the program space* — restart probability,
        // step cap, dead-end policy, target set — every engine drains the
        // walk in bounded attempts and emits each path exactly once, in
        // id order, under a random batch schedule with an optional cancel
        // point. The cap bound (path ≤ budget + 1 vertices) holds for
        // completed and cancelled walks alike.
        let g = lightrw::graph::generators::rmat_dataset(6, 29);
        let mut program = match alpha_bits {
            Some(b) => WalkProgram::ppr(b as f64 / 100.0, max),
            None => WalkProgram::fixed(max),
        };
        if restart_dead_ends {
            program = program.with_dead_end(DeadEndPolicy::Restart);
        }
        if let Some(stride) = target_stride {
            program = program.with_targets(std::sync::Arc::new(
                lightrw::walker::NeighborBitset::from_members(
                    g.num_vertices(),
                    (0..g.num_vertices()).step_by(stride),
                ),
            ));
        }
        let noniso = g.non_isolated_vertices();
        let starts: Vec<u32> = (0..n_queries)
            .map(|i| noniso[(start_seed as usize + i * 7) % noniso.len()])
            .collect();
        let qs = QuerySet::from_starts_with_program(starts.clone(), program);

        let reference = ReferenceEngine::new(&g, &Uniform, SamplerKind::SequentialWrs, 11);
        let cpu = CpuEngine::new(
            &g,
            &Uniform,
            BaselineConfig { threads: 2, ..Default::default() },
        );
        let sim = LightRwSim::new(&g, &Uniform, LightRwConfig::single_instance());
        let engine: &dyn WalkEngine = match engine_pick {
            0 => &reference,
            1 => &cpu,
            _ => &sim,
        };

        let mut emitted: Vec<(u32, Vec<u32>)> = Vec::new();
        let mut sink = |id: u32, path: &[u32]| emitted.push((id, path.to_vec()));
        let mut session = engine.start_session(&qs);
        let mut guard = 0u32;
        let mut i = 0usize;
        while !session.finished() {
            if cancel_at == Some(i) {
                session.cancel(&mut sink);
                break;
            }
            let budget = budgets[i % budgets.len()];
            session.advance(budget, &mut sink);
            i += 1;
            guard += 1;
            // Liveness: every program halts within the cap, so a session
            // over n queries of budget `max` needs at most
            // n·(max+1)/min_batch advances (plus slack for multi-lane
            // rounding) — far below this guard.
            prop_assert!(guard < 50_000, "session failed to drain: {}", engine.label());
        }
        // Exactly-once, id-ordered emission, from completion or cancel.
        let ids: Vec<u32> = emitted.iter().map(|(id, _)| *id).collect();
        let expect: Vec<u32> = (0..qs.len() as u32).collect();
        prop_assert_eq!(&ids, &expect);
        prop_assert_eq!(session.paths_completed(), qs.len());
        for ((_, path), (start, q)) in emitted.iter().zip(starts.iter().zip(qs.queries())) {
            prop_assert!(!path.is_empty());
            prop_assert_eq!(path[0], *start);
            prop_assert!(
                path.len() as u64 <= q.length as u64 + 1,
                "cap exceeded on {}: {:?}",
                engine.label(),
                path
            );
        }
        // A second cancel after the drain emits nothing further.
        let before = emitted.len();
        let mut sink = |id: u32, path: &[u32]| emitted.push((id, path.to_vec()));
        session.cancel(&mut sink);
        prop_assert_eq!(emitted.len(), before);
    }

    #[test]
    fn interleaved_lanes_emit_exactly_once_under_random_schedules(
        threads in 1usize..6,
        length in 1u32..10,
        n_queries in 1usize..40,
        budgets in vec(1u64..17, 1..30),
        cancel_raw in 0usize..40,
        sampler_pick in 0usize..3,
        start_seed in 0u64..400,
    ) {
        // The step-centric worker lanes (DESIGN.md §9) under adversarial
        // schedules: a random lane count, a random advance-budget
        // sequence, and an optional mid-flight cancel must preserve
        // exactly-once id-ordered emission — the `InOrderEmitter`
        // watermark over per-lane completion is the machinery under
        // test. Node2Vec with the rejection sampler in the mix drives
        // the second-order envelope fast path through the same lanes.
        let cancel_at = (cancel_raw < 20).then_some(cancel_raw);
        let sampler = match sampler_pick {
            0 => SamplerKind::InverseTransform,
            1 => SamplerKind::Alias,
            _ => SamplerKind::Rejection,
        };
        let g = lightrw::graph::generators::rmat_dataset(6, 17);
        let app = Node2Vec::paper_params();
        let engine = CpuEngine::new(&g, &app, BaselineConfig { threads, sampler, seed: 31 });
        let noniso = g.non_isolated_vertices();
        let starts: Vec<u32> = (0..n_queries)
            .map(|i| noniso[(start_seed as usize + i * 3) % noniso.len()])
            .collect();
        let qs = QuerySet::from_starts(starts.clone(), length);

        let mut emitted: Vec<(u32, Vec<u32>)> = Vec::new();
        let mut sink = |id: u32, path: &[u32]| emitted.push((id, path.to_vec()));
        let mut session = engine.start_session(&qs);
        let mut i = 0usize;
        while !session.finished() {
            if cancel_at == Some(i) {
                session.cancel(&mut sink);
                break;
            }
            session.advance(budgets[i % budgets.len()], &mut sink);
            i += 1;
            prop_assert!(i < 50_000, "lanes failed to drain");
        }
        // Exactly-once, id-ordered — whether the session completed or a
        // cancel flushed the remaining walkers as prefixes.
        let ids: Vec<u32> = emitted.iter().map(|(id, _)| *id).collect();
        let expect: Vec<u32> = (0..qs.len() as u32).collect();
        prop_assert_eq!(&ids, &expect);
        prop_assert_eq!(session.paths_completed(), qs.len());
        for ((_, path), start) in emitted.iter().zip(&starts) {
            prop_assert!(!path.is_empty());
            prop_assert_eq!(path[0], *start);
            prop_assert!(path.len() as u64 <= length as u64 + 1);
            prop_assert!(validate_path(&g, &app, path).is_ok());
        }
    }

    #[test]
    fn sharded_sessions_emit_exactly_once_under_random_schedules(
        shards in 1usize..7,
        flush in 1usize..24,
        shard_threads in 0usize..4,
        length in 1u32..10,
        n_queries in 1usize..40,
        budgets in vec(1u64..17, 1..30),
        cancel_raw in 0usize..40,
        sampler_pick in 0usize..3,
        start_seed in 0u64..400,
    ) {
        // The partitioned execution path (DESIGN.md §11–§12) under the
        // same adversarial schedules as the CPU lanes above: a random
        // shard count, a random hand-off flush budget, a random executor
        // thread count (0 = one pinned executor per shard, 1 = the
        // sequential interleave, 2..4 = shards folded onto fewer
        // executors with racy channel batch arrival), a random
        // advance-budget sequence and an optional mid-flight cancel must
        // preserve exactly-once id-ordered emission — here the
        // `InOrderEmitter` watermark sits over walkers that *migrate
        // between shards* mid-walk, so a dropped or duplicated hand-off
        // record would surface as a missing or repeated id. Node2Vec
        // keeps the second-order prev-row payload in play on every
        // crossing.
        let cancel_at = (cancel_raw < 20).then_some(cancel_raw);
        let sampler = match sampler_pick {
            0 => SamplerKind::InverseTransform,
            1 => SamplerKind::Alias,
            _ => SamplerKind::Rejection,
        };
        let mut g = lightrw::graph::generators::rmat_dataset(6, 17);
        g.build_prefix_cache();
        let app = Node2Vec::paper_params();
        let engine = ShardedEngine::partition(
            &g,
            shards,
            lightrw::graph::ShardStrategy::Range,
            &app,
            sampler,
            31,
        )
        .with_flush_budget(flush)
        .with_shard_threads(shard_threads);
        let noniso = g.non_isolated_vertices();
        let starts: Vec<u32> = (0..n_queries)
            .map(|i| noniso[(start_seed as usize + i * 3) % noniso.len()])
            .collect();
        let qs = QuerySet::from_starts(starts.clone(), length);

        let mut emitted: Vec<(u32, Vec<u32>)> = Vec::new();
        let mut sink = |id: u32, path: &[u32]| emitted.push((id, path.to_vec()));
        let mut session = engine.start_session(&qs);
        let mut i = 0usize;
        while !session.finished() {
            if cancel_at == Some(i) {
                session.cancel(&mut sink);
                break;
            }
            session.advance(budgets[i % budgets.len()], &mut sink);
            i += 1;
            prop_assert!(i < 50_000, "sharded session failed to drain");
        }
        // Exactly-once, id-ordered — whether the session completed or a
        // cancel flushed the in-flight walkers as prefixes.
        let ids: Vec<u32> = emitted.iter().map(|(id, _)| *id).collect();
        let expect: Vec<u32> = (0..qs.len() as u32).collect();
        prop_assert_eq!(&ids, &expect);
        prop_assert_eq!(session.paths_completed(), qs.len());
        for ((_, path), start) in emitted.iter().zip(&starts) {
            prop_assert!(!path.is_empty());
            prop_assert_eq!(path[0], *start);
            prop_assert!(path.len() as u64 <= length as u64 + 1);
            prop_assert!(validate_path(&g, &app, path).is_ok());
        }
        // A second cancel after the drain emits nothing further.
        let before = emitted.len();
        let mut sink = |id: u32, path: &[u32]| emitted.push((id, path.to_vec()));
        session.cancel(&mut sink);
        prop_assert_eq!(emitted.len(), before);
    }

    #[test]
    fn random_batch_schedules_never_change_session_output(
        budgets in vec(1u64..23, 1..40),
        threads in 1usize..5,
        length in 1u32..12,
    ) {
        // The session half of the layer, under service-shaped schedules:
        // an arbitrary advance-budget sequence (resuming with u64::MAX
        // once the generated schedule runs out) reproduces the monolithic
        // run bit for bit on the CPU engine — the contract the scheduler's
        // deficit-sized batches lean on.
        let g = lightrw::graph::generators::rmat_dataset(6, 21);
        let cfg = BaselineConfig { threads, ..Default::default() };
        let engine = CpuEngine::new(&g, &Uniform, cfg);
        let qs = QuerySet::per_nonisolated_vertex(&g, length, 9);
        let (whole, _) = engine.run(&qs);
        let mut batched = WalkResults::new();
        let mut session = engine.start_session(&qs);
        let mut i = 0;
        while !session.finished() {
            let budget = budgets.get(i).copied().unwrap_or(u64::MAX);
            session.advance(budget, &mut batched);
            i += 1;
        }
        prop_assert_eq!(whole, batched);
    }
}
