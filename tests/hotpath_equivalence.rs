//! The hot-path RNG-identity contract (DESIGN.md §5), engine level: the
//! degree-indexed uniform fast path, the static-weight / per-relation
//! prefix-cache path and the generic streaming path must produce
//! bit-for-bit identical walks for every app × sampler kind, with or
//! without the prefix cache — so the profile hints change speed, never
//! results, and stay in lockstep with the `ReferenceEngine` oracle.

use lightrw::prelude::*;
use lightrw::walker::app::StepContext;
use lightrw_repro as _;

/// Delegating wrapper that hides an app's `weight_profile()` /
/// `static_relation()` hints, forcing every engine onto the generic
/// streaming path while computing exactly the same weights.
struct ForceDynamic<'a>(&'a dyn WalkApp);

impl WalkApp for ForceDynamic<'_> {
    fn name(&self) -> &'static str {
        "ForceDynamic"
    }
    fn second_order(&self) -> bool {
        self.0.second_order()
    }
    fn weight(
        &self,
        ctx: StepContext,
        nbr: lightrw::graph::VertexId,
        w_static: u32,
        relation: u8,
        prev_is_neighbor: bool,
    ) -> u32 {
        self.0
            .weight(ctx, nbr, w_static, relation, prev_is_neighbor)
    }
}

// A-ExpJ rides along even though it draws its own RNG stream: its
// prefix-jump and uniform-skip fast paths are proven bit-identical to
// its generic exponential-key streaming (crates/sampling/src/a_expj.rs),
// so the cross-strategy identity contract applies to it unchanged.
const ALL_SAMPLERS: [SamplerKind; 6] = [
    SamplerKind::InverseTransform,
    SamplerKind::Alias,
    SamplerKind::SequentialWrs,
    SamplerKind::ParallelWrs { k: 4 },
    SamplerKind::ParallelWrs { k: 16 },
    SamplerKind::AExpJ,
];

fn fixtures(seed: u64) -> (Graph, Graph) {
    let g = generators::rmat_dataset(8, seed);
    assert!(g.has_prefix_cache(), "generators should build the cache");
    let mut bare = g.clone();
    bare.drop_prefix_cache();
    (g, bare)
}

fn apps() -> Vec<Box<dyn WalkApp>> {
    vec![
        Box::new(Uniform),
        Box::new(StaticWeighted),
        Box::new(MetaPath::new(vec![0, 1, 0, 1, 0])),
        Box::new(Node2Vec::paper_params()),
    ]
}

#[test]
fn reference_engine_paths_agree_across_all_strategies() {
    for seed in [3u64, 17] {
        let (g, bare) = fixtures(seed);
        let qs = QuerySet::per_nonisolated_vertex(&g, 8, seed);
        for app in apps() {
            let forced = ForceDynamic(app.as_ref());
            for sk in ALL_SAMPLERS {
                let fast = ReferenceEngine::new(&g, app.as_ref(), sk, 11).run(&qs);
                let generic = ReferenceEngine::new(&g, &forced, sk, 11).run(&qs);
                let uncached = ReferenceEngine::new(&bare, app.as_ref(), sk, 11).run(&qs);
                assert_eq!(
                    fast,
                    generic,
                    "{} {}: fast path diverged from generic streaming",
                    app.name(),
                    sk.name()
                );
                assert_eq!(
                    fast,
                    uncached,
                    "{} {}: cached diverged from uncached",
                    app.name(),
                    sk.name()
                );
            }
        }
    }
}

#[test]
fn cpu_engine_paths_agree_across_all_strategies() {
    let (g, bare) = fixtures(5);
    let qs = QuerySet::per_nonisolated_vertex(&g, 6, 9);
    for app in apps() {
        let forced = ForceDynamic(app.as_ref());
        for sk in ALL_SAMPLERS {
            for threads in [1usize, 3] {
                let cfg = BaselineConfig {
                    threads,
                    sampler: sk,
                    seed: 77,
                };
                let (fast, _) = CpuEngine::new(&g, app.as_ref(), cfg).run(&qs);
                let (generic, _) = CpuEngine::new(&g, &forced, cfg).run(&qs);
                let (uncached, _) = CpuEngine::new(&bare, app.as_ref(), cfg).run(&qs);
                assert_eq!(
                    fast,
                    generic,
                    "{} {} threads={threads}: fast path diverged",
                    app.name(),
                    sk.name()
                );
                assert_eq!(
                    fast,
                    uncached,
                    "{} {} threads={threads}: cache changed the walks",
                    app.name(),
                    sk.name()
                );
            }
        }
    }
}

#[test]
fn hwsim_paths_agree_across_all_strategies() {
    let (g, bare) = fixtures(13);
    let qs = QuerySet::per_nonisolated_vertex(&g, 6, 31);
    let cfg = LightRwConfig::default();
    for app in apps() {
        let forced = ForceDynamic(app.as_ref());
        let fast = LightRwSim::new(&g, app.as_ref(), cfg).run(&qs);
        let generic = LightRwSim::new(&g, &forced, cfg).run(&qs);
        let uncached = LightRwSim::new(&bare, app.as_ref(), cfg).run(&qs);
        assert_eq!(
            fast.results,
            generic.results,
            "{}: hwsim fast path diverged",
            app.name()
        );
        assert_eq!(
            fast.results,
            uncached.results,
            "{}: hwsim cache changed the walks",
            app.name()
        );
        // The timing model must be untouched by the functional strategy.
        assert_eq!(fast.cycles, generic.cycles, "{}", app.name());
        assert_eq!(fast.cycles, uncached.cycles, "{}", app.name());
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

    /// Randomized sweep: graph seed, walk length and engine seed all vary;
    /// the three strategies must keep emitting identical paths.
    #[test]
    fn strategies_agree_on_random_workloads(
        gseed in 0u64..200,
        eseed in 0u64..1000,
        length in 1u32..10,
    ) {
        let (g, bare) = fixtures(gseed);
        let qs = QuerySet::n_queries(&g, 64, length, gseed ^ eseed);
        for app in apps() {
            let forced = ForceDynamic(app.as_ref());
            for sk in [SamplerKind::InverseTransform, SamplerKind::ParallelWrs { k: 8 }] {
                let fast = ReferenceEngine::new(&g, app.as_ref(), sk, eseed).run(&qs);
                let generic = ReferenceEngine::new(&g, &forced, sk, eseed).run(&qs);
                let uncached = ReferenceEngine::new(&bare, app.as_ref(), sk, eseed).run(&qs);
                proptest::prop_assert_eq!(&fast, &generic);
                proptest::prop_assert_eq!(&fast, &uncached);
            }
        }
    }
}
