//! Integration pins for the sharded execution path (DESIGN.md §11).
//!
//! The unit suite in `lightrw::sharded` pins the engine's internal
//! invariants; this suite pins the *cross-layer* contracts:
//!
//! - **k = 1 bit-identity**: a single-shard `ShardedEngine` reproduces
//!   the `ReferenceEngine` walk for walk, for every app × sampler kind —
//!   the sharded path adds no sampling of its own.
//! - **Partition independence**: shard count, partition strategy and
//!   flush budget never change sampled walks, because every walker owns
//!   a private RNG stream that travels with it across hand-offs.
//! - **Schedule independence**: parallel pinned executors
//!   (`with_shard_threads`) reproduce the sequential interleave bit for
//!   bit for every app × sampler kind, whatever the thread count.
//! - **Packed round-trip**: a partition loaded from an `LRWPAK01` file
//!   (plain or varint-compressed columns) drives the engine to the same
//!   walks as an in-memory partition of the same graph.

use lightrw::graph::pack::pack_graph_with;
use lightrw::graph::packed::{load_packed_sharded, LoadMode};
use lightrw::graph::{generators, partition_graph, ShardStrategy};
use lightrw::prelude::*;
use lightrw_repro as _;

const ALL_SAMPLERS: [SamplerKind; 7] = [
    SamplerKind::InverseTransform,
    SamplerKind::Alias,
    SamplerKind::SequentialWrs,
    SamplerKind::ParallelWrs { k: 4 },
    SamplerKind::ParallelWrs { k: 16 },
    SamplerKind::Rejection,
    SamplerKind::AExpJ,
];

#[test]
fn single_shard_is_bit_identical_to_the_reference_for_every_app_and_sampler() {
    // Rejection needs the prefix cache on both sides for its envelope to
    // draw the same stream; build it once on the source graph so the
    // shard sub-CSRs inherit it.
    let mut g = generators::rmat_dataset(8, 14);
    g.build_prefix_cache();
    let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
    let nv = Node2Vec::paper_params();
    let apps: [&dyn WalkApp; 4] = [&Uniform, &StaticWeighted, &mp, &nv];
    let qs = QuerySet::per_nonisolated_vertex(&g, 6, 4);

    for app in apps {
        for kind in ALL_SAMPLERS {
            let expected = ReferenceEngine::new(&g, app, kind, 21).run(&qs);
            let engine = ShardedEngine::partition(&g, 1, ShardStrategy::Range, app, kind, 21);
            let got = engine.run_collected(&qs);
            assert_eq!(
                got,
                expected,
                "k=1 sharded diverged from reference: {} / {}",
                app.name(),
                kind.name()
            );
        }
    }
}

#[test]
fn partition_strategy_shard_count_and_flush_budget_never_change_walks() {
    // Per-walker RNG streams make the sampled walks independent of
    // *where* each vertex lives and *when* migrants flush — pin it
    // across both partition strategies, several shard counts and flush
    // budgets, for a second-order app (hand-offs carry prev-row
    // payloads). The baseline is k = 2: k = 1 is the sequential fast
    // path with the reference engine's stream assignment (pinned by the
    // bit-identity test above), so the migrating-walker contract starts
    // at two shards.
    let mut g = generators::rmat_dataset(8, 14);
    g.build_prefix_cache();
    let nv = Node2Vec::paper_params();
    let qs = QuerySet::n_queries(&g, 48, 12, 5);
    let baseline =
        ShardedEngine::partition(&g, 2, ShardStrategy::Range, &nv, SamplerKind::Alias, 13)
            .run_collected(&qs);
    for strategy in [
        ShardStrategy::Range,
        ShardStrategy::Fennel,
        ShardStrategy::Walk,
    ] {
        for (k, flush) in [(2, 1), (3, 16), (4, 64), (7, 5)] {
            let engine = ShardedEngine::partition(&g, k, strategy, &nv, SamplerKind::Alias, 13)
                .with_flush_budget(flush);
            let got = engine.run_collected(&qs);
            assert_eq!(
                got,
                baseline,
                "walks changed under {} k={k} flush={flush}",
                strategy.name()
            );
        }
    }
}

#[test]
fn parallel_executors_are_bit_identical_to_the_sequential_interleave() {
    // The tentpole contract: real per-shard executor threads may retire
    // walkers and deliver hand-off batches in any order, yet the sampled
    // walks must equal the single-thread interleave exactly — for every
    // app × sampler kind, because each walker's RNG stream is a pure
    // function of its query, not of the schedule. threads=2 folds three
    // shards onto two executors (one runs two lanes); threads=0 pins one
    // executor per shard.
    let mut g = generators::rmat_dataset(8, 14);
    g.build_prefix_cache();
    let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
    let nv = Node2Vec::paper_params();
    let apps: [&dyn WalkApp; 4] = [&Uniform, &StaticWeighted, &mp, &nv];
    let qs = QuerySet::per_nonisolated_vertex(&g, 6, 4);

    for app in apps {
        for kind in ALL_SAMPLERS {
            let sequential = ShardedEngine::partition(&g, 3, ShardStrategy::Range, app, kind, 21)
                .run_collected(&qs);
            for threads in [2, 0] {
                let engine = ShardedEngine::partition(&g, 3, ShardStrategy::Range, app, kind, 21)
                    .with_shard_threads(threads);
                let got = engine.run_collected(&qs);
                assert_eq!(
                    got,
                    sequential,
                    "parallel schedule changed walks: {} / {} threads={threads}",
                    app.name(),
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn packed_shard_partitions_reproduce_in_memory_partitions() {
    // Pack → load → walk must equal partition-in-memory → walk, for both
    // the plain and the varint-compressed column encodings, so the CLI's
    // "partition from file" fast path is exactly the in-memory engine.
    let mut g = generators::rmat_dataset(8, 14);
    g.build_prefix_cache();
    let qs = QuerySet::n_queries(&g, 48, 12, 5);
    let expected = ShardedEngine::new(
        partition_graph(&g, 2, ShardStrategy::Range),
        &StaticWeighted,
        SamplerKind::InverseTransform,
        9,
    )
    .run_collected(&qs);

    for compress in [false, true] {
        let path = std::env::temp_dir().join(format!(
            "lightrw_sharded_execution_{}_{}.lrwpak",
            std::process::id(),
            compress
        ));
        let mut packed_src = g.clone();
        pack_graph_with(
            &mut packed_src,
            false,
            2,
            ShardStrategy::Range,
            compress,
            &path,
        )
        .expect("pack sharded graph");
        let loaded = load_packed_sharded(&path, LoadMode::Heap).expect("load sharded graph");
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded.sharded.k(), 2);
        assert!(
            loaded.relabeling.is_none(),
            "packed without --relabel keeps vertex ids"
        );
        let got = ShardedEngine::new(
            loaded.sharded,
            &StaticWeighted,
            SamplerKind::InverseTransform,
            9,
        )
        .run_collected(&qs);
        assert_eq!(got, expected, "compress={compress}");
    }
}
