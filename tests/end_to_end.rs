//! Whole-stack integration: graph I/O → accelerator → embeddings →
//! link prediction, plus determinism of the full pipeline.

use lightrw::prelude::*;
use lightrw_embed::{auc, holdout_split, SgnsConfig, SgnsTrainer};
use lightrw_repro as _;

#[test]
fn binary_graph_roundtrip_preserves_walk_behaviour() {
    let g = DatasetProfile::youtube().stand_in(9, 77);
    let mut buf = Vec::new();
    lightrw::graph::io::write_binary(&g, &mut buf).unwrap();
    let g2 = lightrw::graph::io::read_binary(&buf[..]).unwrap();
    assert_eq!(g, g2);

    // Same seed + same graph image ⇒ identical simulated walks.
    let qs = QuerySet::per_nonisolated_vertex(&g, 8, 5);
    let a = LightRwSim::new(&g, &Uniform, LightRwConfig::default()).run(&qs);
    let b = LightRwSim::new(&g2, &Uniform, LightRwConfig::default()).run(&qs);
    assert_eq!(a.results, b.results);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn full_pipeline_is_deterministic() {
    let g = DatasetProfile::orkut().stand_in(9, 5);
    let nv = Node2Vec::paper_params();
    let qs = QuerySet::per_nonisolated_vertex(&g, 12, 9);
    let run = || {
        let sim = LightRwSim::new(&g, &nv, LightRwConfig::default()).run(&qs);
        let emb = SgnsTrainer::new(SgnsConfig {
            dim: 8,
            epochs: 1,
            ..Default::default()
        })
        .train(&sim.results, g.num_vertices());
        (sim.cycles, sim.results, emb.cosine(0, 1))
    };
    let (c1, r1, s1) = run();
    let (c2, r2, s2) = run();
    assert_eq!(c1, c2);
    assert_eq!(r1, r2);
    assert_eq!(s1, s2);
}

#[test]
fn accelerated_walks_power_link_prediction() {
    // End to end on a structured graph: hold out edges, walk on the
    // simulated accelerator, train, and beat chance clearly.
    let g = {
        use lightrw::rng::{Rng, SplitMix64};
        let mut rng = SplitMix64::new(31);
        let (communities, size) = (12usize, 28usize);
        let mut b = GraphBuilder::undirected().num_vertices(communities * size);
        for c in 0..communities {
            let base = (c * size) as u32;
            for i in 0..size as u32 {
                for j in (i + 1)..size as u32 {
                    if rng.gen_bool(0.35) {
                        b = b.edge(base + i, base + j);
                    }
                }
            }
            let next = (((c + 1) % communities) * size) as u32;
            b = b.edge(base, next);
        }
        b.build()
    };
    let split = holdout_split(&g, 0.15, 3);
    let nv = Node2Vec::paper_params();
    let qs = QuerySet::per_nonisolated_vertex(&split.train, 20, 1);
    let sim = LightRwSim::new(&split.train, &nv, LightRwConfig::default()).run(&qs);
    let emb = SgnsTrainer::new(SgnsConfig {
        dim: 24,
        window: 4,
        epochs: 2,
        ..Default::default()
    })
    .train(&sim.results, split.train.num_vertices());
    let pos: Vec<f32> = split
        .test_pos
        .iter()
        .map(|&(u, v)| emb.cosine(u, v))
        .collect();
    let neg: Vec<f32> = split
        .test_neg
        .iter()
        .map(|&(u, v)| emb.cosine(u, v))
        .collect();
    let score = auc(&pos, &neg);
    assert!(score > 0.7, "AUC {score:.3} too close to chance");
}

#[test]
fn edge_list_file_to_accelerator() {
    // Text ingestion path: write an edge list, load it, walk it.
    let text = "# toy graph\n0 1 3\n1 2 1\n2 0 2\n2 3 5\n3 0 1\n";
    let g = lightrw::graph::io::read_edge_list(text.as_bytes(), true).unwrap();
    let qs = QuerySet::from_starts(vec![0, 1, 2, 3], 10);
    let report = LightRw::new(&g, &StaticWeighted, LightRwConfig::single_instance()).run(&qs);
    assert_eq!(report.sim.results.len(), 4);
    for p in report.sim.results.iter() {
        lightrw::walker::path::validate_path(&g, &StaticWeighted, p).unwrap();
    }
    assert!(report.sim.steps > 0);
}
