//! Statistical conformance: every engine samples the *specified*
//! transition distribution, not merely a valid one.
//!
//! The bit-equivalence suites (`engine_agreement.rs`,
//! `hotpath_equivalence.rs`) pin engines against each other; this suite
//! pins them against **closed-form probabilities** derived by hand from
//! the paper's weight rules on small fixed graphs — a chi-square
//! goodness-of-fit of empirical next-hop frequencies for the uniform,
//! static-weighted, and node2vec (p = 2, q = 0.5) samplers, run
//! identically against all three engines and every sampler kind.
//!
//! ## Significance threshold (why this is not flaky)
//!
//! Every run uses a fixed seed, so each statistic below is a
//! *deterministic number*, not a random variable: the assertions compare
//! that number against `chi_square_crit_999(dof) × 1.2` — the ~99.9%
//! critical value (Wilson–Hilferty approximation) with 20% headroom, the
//! same convention the sampler unit tests use. A conforming sampler lands
//! far below the bound with n = 30 000 draws; a systematically biased one
//! (wrong weights, a broken lane merge, a misrouted prefix cache) lands
//! orders of magnitude above it. Re-running can never flip the outcome;
//! changing a seed moves the statistic by O(dof), far less than the
//! headroom.

use lightrw::prelude::*;
use lightrw::rng::stats::{chi_square_counts, chi_square_crit_999};
use lightrw_repro as _;

const N_WALKS: usize = 30_000;

const ALL_SAMPLERS: [SamplerKind; 7] = [
    SamplerKind::InverseTransform,
    SamplerKind::Alias,
    SamplerKind::SequentialWrs,
    SamplerKind::ParallelWrs { k: 4 },
    SamplerKind::ParallelWrs { k: 16 },
    SamplerKind::Rejection,
    SamplerKind::AExpJ,
];

/// Every engine × sampler combination under test: the reference oracle
/// and the CPU engine with each sampler kind, plus the simulated
/// accelerator (parallel WRS by construction).
fn all_engines<'g>(g: &'g Graph, app: &'g dyn WalkApp) -> Vec<(String, Box<dyn WalkEngine + 'g>)> {
    let mut engines: Vec<(String, Box<dyn WalkEngine + 'g>)> = Vec::new();
    for (i, kind) in ALL_SAMPLERS.into_iter().enumerate() {
        let seed = 100 + i as u64;
        engines.push((
            format!("reference/{}", kind.name()),
            Box::new(ReferenceEngine::new(g, app, kind, seed)),
        ));
        let cfg = BaselineConfig {
            threads: 4,
            sampler: kind,
            seed: 200 + i as u64,
        };
        engines.push((
            format!("cpu/{}", kind.name()),
            Box::new(CpuEngine::new(g, app, cfg)),
        ));
    }
    engines.push((
        "sim/parallel-wrs".to_string(),
        Box::new(LightRwSim::new(
            g,
            app,
            LightRwConfig {
                seed: 300,
                ..LightRwConfig::default()
            },
        )),
    ));
    engines
}

/// Assert empirical `counts` fit `probs` at the documented threshold.
fn assert_fits(label: &str, what: &str, counts: &[u64], probs: &[f64]) {
    let dof = probs.iter().filter(|&&p| p > 0.0).count() - 1;
    let chi2 = chi_square_counts(counts, probs);
    let crit = chi_square_crit_999(dof) * 1.2;
    assert!(
        chi2 < crit,
        "{label} {what}: chi2 {chi2:.1} over threshold {crit:.1} (counts {counts:?})"
    );
}

/// One-step empirical next-hop histogram from vertex 0 over 5 targets.
fn one_step_counts(engine: &dyn WalkEngine) -> Vec<u64> {
    let qs = QuerySet::from_starts(vec![0; N_WALKS], 1);
    let results = engine.run_collected(&qs);
    let mut counts = vec![0u64; 5];
    for p in results.iter() {
        assert_eq!(p.len(), 2, "one-step walk");
        counts[p[1] as usize] += 1;
    }
    counts
}

/// A weighted fan: vertex 0 with out-edges of static weights 2, 3, 5, 10.
fn weighted_fan() -> Graph {
    GraphBuilder::directed()
        .weighted_edges([(0, 1, 2), (0, 2, 3), (0, 3, 5), (0, 4, 10)])
        .num_vertices(5)
        .build()
}

#[test]
fn uniform_sampler_conforms_on_every_engine() {
    // The Uniform app ignores static weights entirely: the closed-form
    // next-hop law on the weighted fan is uniform over the 4 targets.
    // (Running it on a *weighted* graph makes the test sharp: an engine
    // that wrongly consulted static weights would skew 2:3:5:10 and land
    // ~3 orders of magnitude over the threshold.)
    let g = weighted_fan();
    let probs = [0.0, 1.0, 1.0, 1.0, 1.0];
    for (label, engine) in all_engines(&g, &Uniform) {
        let counts = one_step_counts(engine.as_ref());
        assert_fits(&label, "uniform", &counts, &probs);
    }
}

#[test]
fn static_weighted_sampler_conforms_on_every_engine() {
    // StaticWeighted: next-hop probability proportional to the static
    // edge weight — 2 : 3 : 5 : 10 on the fan.
    let g = weighted_fan();
    let probs = [0.0, 2.0, 3.0, 5.0, 10.0];
    for (label, engine) in all_engines(&g, &StaticWeighted) {
        let counts = one_step_counts(engine.as_ref());
        assert_fits(&label, "static-weighted", &counts, &probs);
    }
}

#[test]
fn node2vec_sampler_conforms_on_every_engine() {
    // Node2Vec (p = 2, q = 0.5) on the "kite" graph, unit weights:
    //
    //      0 —— 1 —— 3
    //       \  /
    //        2
    //
    // Two-step walks from 0; the closed-form joint law of (v1, v2),
    // derived by hand from Eq. 2:
    //
    // - Step 1 has no previous vertex, so it is static-uniform over
    //   N(0) = {1, 2}: P(v1) = 1/2 each.
    // - From v1 = 1 (prev 0), N(1) = {0, 2, 3}:
    //     0 is the return edge        → w = 1/p = 1/2   (Eq. 2a)
    //     2 is a neighbour of prev 0  → w = 1           (Eq. 2b)
    //     3 is at distance 2 from 0   → w = 1/q = 2     (Eq. 2c)
    //   normalized: P(0|1) = 1/7, P(2|1) = 2/7, P(3|1) = 4/7.
    // - From v1 = 2 (prev 0), N(2) = {0, 1}:
    //     0 return → 1/2; 1 neighbour of 0 → 1
    //   normalized: P(0|2) = 1/3, P(1|2) = 2/3.
    //
    // Joint over the five reachable (v1, v2) pairs:
    //   (1,0) = 1/14, (1,2) = 1/7, (1,3) = 2/7, (2,0) = 1/6, (2,1) = 1/3.
    //
    // Both scalings (1/p = 1/2, 1/q = 2) are exact in the 16-bit
    // fixed-point weight representation, so the law above is exact, not
    // approximate.
    let g = GraphBuilder::undirected()
        .edges([(0, 1), (0, 2), (1, 2), (1, 3)])
        .build();
    let nv = Node2Vec::paper_params(); // p = 2, q = 0.5
    let pairs = [(1u32, 0u32), (1, 2), (1, 3), (2, 0), (2, 1)];
    let probs = [1.0 / 14.0, 1.0 / 7.0, 2.0 / 7.0, 1.0 / 6.0, 1.0 / 3.0];
    for (label, engine) in all_engines(&g, &nv) {
        let qs = QuerySet::from_starts(vec![0; N_WALKS], 2);
        let results = engine.run_collected(&qs);
        let mut counts = vec![0u64; pairs.len()];
        for p in results.iter() {
            assert_eq!(p.len(), 3, "{label}: two-step walk on the kite");
            let pair = (p[1], p[2]);
            let slot = pairs
                .iter()
                .position(|&x| x == pair)
                .unwrap_or_else(|| panic!("{label}: impossible transition {pair:?}"));
            counts[slot] += 1;
        }
        assert_fits(&label, "node2vec", &counts, &probs);
    }
}

#[test]
fn rejection_sampler_conforms_on_node2vec_for_all_three_engines() {
    // The KnightKing-style rejection fast path (DESIGN.md §9) draws a
    // *different* RNG stream than inverse transform on enveloped
    // second-order steps — bit-identity suites cannot pin it, so the
    // chi-square against the hand-derived kite law (see
    // `node2vec_sampler_conforms_on_every_engine` for the derivation) is
    // its correctness gate. All three backends run it explicitly: the
    // reference oracle, the CPU lanes (multi-threaded, so the per-lane
    // RNG split is exercised too), and the hwsim via its functional
    // sampler override.
    let g = GraphBuilder::undirected()
        .edges([(0, 1), (0, 2), (1, 2), (1, 3)])
        .build();
    let nv = Node2Vec::paper_params(); // p = 2, q = 0.5
    let pairs = [(1u32, 0u32), (1, 2), (1, 3), (2, 0), (2, 1)];
    let probs = [1.0 / 14.0, 1.0 / 7.0, 2.0 / 7.0, 1.0 / 6.0, 1.0 / 3.0];

    let engines: Vec<(&str, Box<dyn WalkEngine + '_>)> = vec![
        (
            "reference/rejection",
            Box::new(ReferenceEngine::new(&g, &nv, SamplerKind::Rejection, 910)),
        ),
        (
            "cpu/rejection",
            Box::new(CpuEngine::new(
                &g,
                &nv,
                BaselineConfig {
                    threads: 4,
                    sampler: SamplerKind::Rejection,
                    seed: 920,
                },
            )),
        ),
        (
            "sim/rejection",
            Box::new(LightRwSim::new(
                &g,
                &nv,
                LightRwConfig {
                    seed: 930,
                    sampler: Some(SamplerKind::Rejection),
                    ..LightRwConfig::default()
                },
            )),
        ),
    ];
    for (label, engine) in engines {
        let qs = QuerySet::from_starts(vec![0; N_WALKS], 2);
        let results = engine.run_collected(&qs);
        let mut counts = vec![0u64; pairs.len()];
        for p in results.iter() {
            assert_eq!(p.len(), 3, "{label}: two-step walk on the kite");
            let pair = (p[1], p[2]);
            let slot = pairs
                .iter()
                .position(|&x| x == pair)
                .unwrap_or_else(|| panic!("{label}: impossible transition {pair:?}"));
            counts[slot] += 1;
        }
        assert_fits(label, "node2vec-rejection", &counts, &probs);
    }
}

#[test]
fn a_expj_sampler_conforms_on_node2vec_for_all_three_engines() {
    // A-ExpJ (Efraimidis–Espirakis with exponential jumps, DESIGN.md
    // §10) is the second opt-in sampler with its own RNG stream: each
    // transition draws exponential keys instead of one inverse-transform
    // uniform, so — exactly like rejection above — bit-identity suites
    // cannot pin it and the chi-square against the hand-derived kite law
    // is its correctness gate across all three backends. Second-order
    // steps exercise its generic streaming path; the first step (static
    // uniform over N(0)) exercises the jump-skipping uniform fast path.
    let g = GraphBuilder::undirected()
        .edges([(0, 1), (0, 2), (1, 2), (1, 3)])
        .build();
    let nv = Node2Vec::paper_params(); // p = 2, q = 0.5
    let pairs = [(1u32, 0u32), (1, 2), (1, 3), (2, 0), (2, 1)];
    let probs = [1.0 / 14.0, 1.0 / 7.0, 2.0 / 7.0, 1.0 / 6.0, 1.0 / 3.0];

    let engines: Vec<(&str, Box<dyn WalkEngine + '_>)> = vec![
        (
            "reference/a-expj",
            Box::new(ReferenceEngine::new(&g, &nv, SamplerKind::AExpJ, 940)),
        ),
        (
            "cpu/a-expj",
            Box::new(CpuEngine::new(
                &g,
                &nv,
                BaselineConfig {
                    threads: 4,
                    sampler: SamplerKind::AExpJ,
                    seed: 950,
                },
            )),
        ),
        (
            "sim/a-expj",
            Box::new(LightRwSim::new(
                &g,
                &nv,
                LightRwConfig {
                    seed: 960,
                    sampler: Some(SamplerKind::AExpJ),
                    ..LightRwConfig::default()
                },
            )),
        ),
    ];
    for (label, engine) in engines {
        let qs = QuerySet::from_starts(vec![0; N_WALKS], 2);
        let results = engine.run_collected(&qs);
        let mut counts = vec![0u64; pairs.len()];
        for p in results.iter() {
            assert_eq!(p.len(), 3, "{label}: two-step walk on the kite");
            let pair = (p[1], p[2]);
            let slot = pairs
                .iter()
                .position(|&x| x == pair)
                .unwrap_or_else(|| panic!("{label}: impossible transition {pair:?}"));
            counts[slot] += 1;
        }
        assert_fits(label, "node2vec-a-expj", &counts, &probs);
    }
}

/// Exact `t`-step law of the α-restart chain from `start`: one step is
/// "teleport to `start` w.p. α, else move to a uniform neighbor" —
/// precisely the per-attempt semantics of `WalkProgram::ppr` with the
/// `Uniform` app (DESIGN.md §8).
fn ppr_t_step_law(adj: &[&[usize]], start: usize, alpha: f64, t: usize) -> Vec<f64> {
    let n = adj.len();
    let mut dist = vec![0.0; n];
    dist[start] = 1.0;
    for _ in 0..t {
        let mut next = vec![0.0; n];
        next[start] += alpha;
        for v in 0..n {
            let share = (1.0 - alpha) * dist[v] / adj[v].len() as f64;
            for &u in adj[v] {
                next[u] += share;
            }
        }
        dist = next;
    }
    dist
}

#[test]
fn ppr_conforms_to_the_stationary_distribution_on_every_engine() {
    // Personalized PageRank on the kite graph (0-1, 0-2, 1-2, 1-3),
    // Uniform app, α = 0.2, start 0. The walk's position after t steps
    // follows the α-restart chain exactly; its stationary distribution π
    // solves π = α·e₀ + (1-α)·πP (the closed-form PPR vector). We:
    //
    //  1. compute the exact t-step law by iterating the chain (t = 24 —
    //     each emitted path has exactly t+1 vertices on this dead-end-free
    //     graph, so the *last* path vertex is an iid sample of that law);
    //  2. check it has mixed: ‖law − π‖∞ ≤ (1-α)^t ≈ 4.7e-3, i.e. the
    //     empirical visit distribution is the stationary one up to far
    //     below the chi-square headroom;
    //  3. chi-square the last-vertex histogram of N walks against the
    //     exact law, per engine × sampler combo — deterministic seeds,
    //     same crit_999 × 1.2 threshold as the rest of the suite.
    //
    // The α quantization (32 fractional bits, error < 2.4e-11) is orders
    // of magnitude below the statistical resolution.
    let g = GraphBuilder::undirected()
        .edges([(0, 1), (0, 2), (1, 2), (1, 3)])
        .build();
    let adj: [&[usize]; 4] = [&[1, 2], &[0, 2, 3], &[0, 1], &[1]];
    let (alpha, cap) = (0.2, 24u32);
    let law = ppr_t_step_law(&adj, 0, alpha, cap as usize);

    // Stationary fixed point, iterated to numerical convergence.
    let pi = ppr_t_step_law(&adj, 0, alpha, 2000);
    for (a, b) in law.iter().zip(&pi) {
        assert!(
            (a - b).abs() < (1.0 - alpha).powi(cap as i32) + 1e-9,
            "t-step law has not mixed: {law:?} vs stationary {pi:?}"
        );
    }

    let n_walks = 24_000;
    let program = WalkProgram::ppr(alpha, cap);
    for (label, engine) in all_engines(&g, &Uniform) {
        let qs = QuerySet::from_starts_with_program(vec![0; n_walks], program.clone());
        let results = engine.run_collected(&qs);
        let mut counts = vec![0u64; 4];
        for p in results.iter() {
            assert_eq!(
                p.len(),
                cap as usize + 1,
                "{label}: no dead ends, no targets — every walk runs to its cap"
            );
            counts[*p.last().unwrap() as usize] += 1;
        }
        assert_fits(&label, "ppr", &counts, &law);
    }
}

#[test]
fn sharded_execution_conforms_for_two_and_four_shards() {
    // Walker hand-off (DESIGN.md §11) must not perturb the transition
    // law: on these tiny fixed graphs a range partition puts vertex 0
    // and most of its targets in *different* shards, so nearly every
    // step migrates a walker — serialized RNG stream, prev-row payload
    // and all — yet the empirical law must still match the closed
    // forms derived above.
    use lightrw::graph::ShardStrategy;

    // Static-weighted fan, 2 : 3 : 5 : 10 (see the unsharded test).
    let g = weighted_fan();
    let probs = [0.0, 2.0, 3.0, 5.0, 10.0];
    for k in [2usize, 4] {
        let engine = ShardedEngine::partition(
            &g,
            k,
            ShardStrategy::Range,
            &StaticWeighted,
            SamplerKind::InverseTransform,
            400 + k as u64,
        );
        let counts = one_step_counts(&engine);
        assert_fits(
            &format!("sharded-k{k}/inverse-transform"),
            "static-weighted",
            &counts,
            &probs,
        );
    }

    // Node2Vec (p = 2, q = 0.5) kite joint law (derivation in
    // `node2vec_sampler_conforms_on_every_engine`): second-order
    // hand-offs must carry the previous row across shards correctly.
    let g = GraphBuilder::undirected()
        .edges([(0, 1), (0, 2), (1, 2), (1, 3)])
        .build();
    let nv = Node2Vec::paper_params();
    let pairs = [(1u32, 0u32), (1, 2), (1, 3), (2, 0), (2, 1)];
    let probs = [1.0 / 14.0, 1.0 / 7.0, 2.0 / 7.0, 1.0 / 6.0, 1.0 / 3.0];
    for (k, strategy, kind) in [
        (2usize, ShardStrategy::Range, SamplerKind::InverseTransform),
        (2, ShardStrategy::Fennel, SamplerKind::Rejection),
        (4, ShardStrategy::Range, SamplerKind::AExpJ),
    ] {
        let label = format!("sharded-k{k}-{}/{}", strategy.name(), kind.name());
        let engine = ShardedEngine::partition(&g, k, strategy, &nv, kind, 500 + k as u64);
        let qs = QuerySet::from_starts(vec![0; N_WALKS], 2);
        let results = engine.run_collected(&qs);
        let mut counts = vec![0u64; pairs.len()];
        for p in results.iter() {
            assert_eq!(p.len(), 3, "{label}: two-step walk on the kite");
            let pair = (p[1], p[2]);
            let slot = pairs
                .iter()
                .position(|&x| x == pair)
                .unwrap_or_else(|| panic!("{label}: impossible transition {pair:?}"));
            counts[slot] += 1;
        }
        assert_fits(&label, "node2vec-sharded", &counts, &probs);
    }
}

#[test]
fn conformance_holds_through_batched_service_scheduling() {
    // The serving layer must not perturb distributions either: the same
    // static-weighted fan, sampled through a WalkService with a tiny
    // quantum (maximal interleaving of two concurrent tenants), matches
    // the same closed-form law. (Scheduling never touches the RNG — this
    // is the statistical restatement of the bit-identity contract.)
    use lightrw::service::{JobSpec, ServiceConfig, WalkService};
    let g = weighted_fan();
    let probs = [0.0, 2.0, 3.0, 5.0, 10.0];
    let engine = ReferenceEngine::new(&g, &StaticWeighted, SamplerKind::InverseTransform, 77);
    let workers: Vec<&dyn WalkEngine> = vec![&engine];
    let mut service = WalkService::new(
        workers,
        ServiceConfig {
            quantum: 3,
            ..Default::default()
        },
    );
    let qs = QuerySet::from_starts(vec![0; N_WALKS / 2], 1);
    let a = service.submit(JobSpec::tenant(0), qs.clone());
    let b = service.submit(JobSpec::tenant(1), qs);
    service.run_until_idle();
    let mut counts = vec![0u64; 5];
    for job in [a, b] {
        for p in service.take_results(job).unwrap().iter() {
            counts[p[1] as usize] += 1;
        }
    }
    assert_fits("service/reference", "static-weighted", &counts, &probs);
}
