//! The paper's headline claims as executable assertions, at reduced scale
//! (direction and ordering, not absolute factors — DESIGN.md §1).

use lightrw::memsim::bandwidth::{expected_valid_ratio, fig6_sweep};
use lightrw::platform::AppKind;
use lightrw::prelude::*;
use lightrw::resources;
use lightrw_repro as _;

fn cycles(g: &Graph, app: &dyn WalkApp, len: u32, cfg: LightRwConfig) -> u64 {
    let qs = QuerySet::per_nonisolated_vertex(g, len, 3);
    LightRwSim::new(g, app, cfg).run(&qs).cycles
}

/// §3.2 / Fig. 13: fine-grained WRS pipelining is the largest single win.
#[test]
fn claim_wrs_pipelining_dominates_the_breakdown() {
    let g = DatasetProfile::livejournal().stand_in(11, 9);
    let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
    let base = LightRwConfig::single_instance();
    let all_on = cycles(&g, &mp, 5, base);
    let no_wrs = cycles(&g, &mp, 5, base.without_wrs_pipelining());
    let no_dyb = cycles(&g, &mp, 5, base.without_dynamic_burst());
    let no_dac = cycles(&g, &mp, 5, base.without_cache());
    assert!(no_wrs as f64 > 1.5 * all_on as f64, "WRS win too small");
    assert!(no_wrs > no_dyb && no_wrs > no_dac, "WRS must dominate");
}

/// Fig. 11: the degree-aware policy beats direct-mapped replacement once
/// the graph outgrows the cache.
#[test]
fn claim_degree_aware_cache_beats_dmc() {
    let g = lightrw::graph::generators::rmat_dataset(14, 5);
    let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
    let qs = QuerySet::per_nonisolated_vertex(&g, 5, 1);
    let run = |policy| {
        let cfg = LightRwConfig {
            cache_policy: policy,
            instances: 1,
            ..LightRwConfig::default()
        };
        LightRwSim::new(&g, &mp, cfg)
            .run(&qs)
            .cache_total()
            .miss_ratio()
    };
    let dac = run(CachePolicy::DegreeAware);
    let dmc = run(CachePolicy::AlwaysReplace);
    assert!(
        dac + 0.05 < dmc,
        "DAC {dac:.3} must clearly beat DMC {dmc:.3}"
    );
}

/// Fig. 6: valid-data ratio falls monotonically with burst length while
/// bandwidth rises; Fig. 12: the dynamic split keeps the short-burst valid
/// ratio.
#[test]
fn claim_fig6_tradeoff_and_dynamic_burst_resolution() {
    let g = DatasetProfile::livejournal().stand_in(11, 2);
    let dram = DramConfig::default();
    let sweep = fig6_sweep(&g, &dram);
    for w in sweep.windows(2).skip(1) {
        assert!(w[0].valid_ratio >= w[1].valid_ratio - 1e-12);
        assert!(w[0].bandwidth_gbps <= w[1].bandwidth_gbps + 1e-12);
    }
    // The dynamic engine's loaded bytes equal the b1 rounding (§5.2).
    let b1 = expected_valid_ratio(&g, 1, &dram);
    let dynamic = lightrw::memsim::bandwidth::expected_valid_ratio_dynamic(
        &g,
        BurstConfig::paper_best(),
        &dram,
    );
    assert!((b1 - dynamic).abs() < 1e-12);
}

/// Fig. 14 shape: the simulated accelerator beats the measured CPU
/// baseline on every stand-in for both applications.
#[test]
fn claim_lightrw_wins_on_every_dataset() {
    use std::time::Instant;
    let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
    let nv = Node2Vec::paper_params();
    for (app, len) in [(&mp as &dyn WalkApp, 5u32), (&nv as &dyn WalkApp, 16)] {
        for p in DatasetProfile::all_real() {
            let g = p.stand_in(10, 4);
            let qs = QuerySet::per_nonisolated_vertex(&g, len, 6);
            let t = Instant::now();
            CpuEngine::new(&g, app, BaselineConfig::default()).run(&qs);
            let cpu_s = t.elapsed().as_secs_f64();
            let rep = LightRw::new(&g, app, LightRwConfig::default()).run(&qs);
            assert!(
                rep.end_to_end_s() < cpu_s,
                "{} on {}: lightrw {:.4}s vs cpu {:.4}s",
                app.name(),
                p.name,
                rep.end_to_end_s(),
                cpu_s
            );
        }
    }
}

/// Table 4 shape: MetaPath's short walks leave transfers visible, while
/// Node2Vec's 80-step walks amortize them to near zero.
#[test]
fn claim_pcie_share_contrast() {
    let g = DatasetProfile::livejournal().stand_in(10, 8);
    let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
    let nv = Node2Vec::paper_params();
    let mp_frac = LightRw::new(&g, &mp, LightRwConfig::default())
        .run(&QuerySet::per_nonisolated_vertex(&g, 5, 1))
        .pcie
        .transfer_fraction();
    let nv_frac = LightRw::new(&g, &nv, LightRwConfig::default())
        .run(&QuerySet::per_nonisolated_vertex(&g, 80, 1))
        .pcie
        .transfer_fraction();
    assert!(
        mp_frac > 2.0 * nv_frac,
        "MetaPath {mp_frac} vs Node2Vec {nv_frac}"
    );
}

/// Table 5 shape: both bitstreams fit the U250 with ample headroom, and
/// Node2Vec trades logic for BRAM relative to MetaPath.
#[test]
fn claim_resource_fit_and_inversion() {
    let cfg = LightRwConfig::default();
    let mp = resources::estimate(&cfg, AppKind::MetaPath);
    let nv = resources::estimate(&cfg, AppKind::Node2Vec);
    assert!(resources::fits_u250(&mp) && resources::fits_u250(&nv));
    assert!(mp.luts_pct < 50.0 && nv.luts_pct < 50.0, "ample headroom");
    assert!(nv.brams_pct > mp.brams_pct);
    assert!(nv.luts_pct < mp.luts_pct);
}

/// Fig. 16 shape: accelerator throughput is roughly flat in query count,
/// within a small factor between small and large batches.
#[test]
fn claim_throughput_flat_in_query_count() {
    let g = DatasetProfile::livejournal().stand_in(11, 12);
    let mp = MetaPath::new(vec![0, 1, 0, 1, 0]);
    let tp = |n: usize| {
        let qs = QuerySet::n_queries(&g, n, 5, 3);
        LightRwSim::new(&g, &mp, LightRwConfig::default())
            .run(&qs)
            .steps_per_sec()
    };
    let small = tp(1 << 10);
    let large = tp(1 << 13);
    let ratio = large / small;
    assert!(
        (0.5..2.5).contains(&ratio),
        "throughput should be roughly flat, got ratio {ratio:.2}"
    );
}
