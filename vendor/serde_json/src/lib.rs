//! Offline stand-in for `serde_json`, vendored because the build
//! environment has no crates.io access. Provides `to_string` /
//! `to_string_pretty` over the vendored [`serde::Serialize`] trait —
//! the only serde_json surface this workspace uses.

use std::fmt;

/// Error type kept for API compatibility; the simplified encoder is
/// infallible, so this is never constructed today.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serialize `value` to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Re-indent a compact JSON string. Operates on the token structure (it
/// respects string escapes), so it round-trips anything `to_string` emits.
fn prettify(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 2);
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escape = false;
    for c in s.chars() {
        if in_str {
            out.push(c);
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                depth += 1;
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn to_string_roundtrip() {
        assert_eq!(super::to_string(&vec![1u8, 2]).unwrap(), "[1,2]");
        let pretty = super::to_string_pretty(&vec![1u8, 2]).unwrap();
        assert!(pretty.contains('\n'));
    }
}
