//! Offline stand-in for `serde`, vendored into the workspace because the
//! build environment has no network access to crates.io.
//!
//! Only the surface this workspace actually uses is provided: the
//! [`Serialize`] trait (with a simplified single-format contract: types
//! know how to append their JSON encoding to a buffer) and the
//! `#[derive(Serialize)]` macro re-exported from `serde_derive`. The
//! derive generates impls of this trait for plain structs with named
//! fields and for fieldless enums, which covers every derived type in
//! the LightRW reproduction.
//!
//! The trait contract is intentionally *not* serde's visitor-based
//! `Serializer` API: downstream code here only ever calls
//! `serde_json::to_string`, so a direct JSON encoding keeps the vendored
//! code a few hundred lines instead of a few tens of thousands.

pub use serde_derive::Serialize;

/// Types that can append a JSON encoding of themselves to a buffer.
pub trait Serialize {
    /// Append the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

macro_rules! impl_display_num {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                use core::fmt::Write;
                write!(out, "{self}").expect("writing to a String cannot fail");
            }
        })*
    };
}

impl_display_num!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            let mut s = format!("{self}");
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                s.push_str(".0");
            }
            out.push_str(&s);
        } else {
            // JSON has no NaN/Inf; serde_json emits null for them.
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        (*self as f64).serialize_json(out)
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

/// JSON string escaping shared by `str` and `char`.
pub fn escape_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        escape_str(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        escape_str(self, out);
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        escape_str(&self.to_string(), out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {
        $(impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        })*
    };
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out)
    }
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    fn to_json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(to_json(&42u32), "42");
        assert_eq!(to_json(&-7i64), "-7");
        assert_eq!(to_json(&0usize), "0");
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&1.5f64), "1.5");
        assert_eq!(to_json(&2.0f64), "2.0");
        assert_eq!(to_json(&f64::NAN), "null");
        assert_eq!(to_json(&"a\"b\n"), "\"a\\\"b\\n\"");
        assert_eq!(to_json(&vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(to_json(&Some(5u8)), "5");
        assert_eq!(to_json(&Option::<u8>::None), "null");
    }
}
