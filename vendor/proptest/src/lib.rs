//! Offline stand-in for `proptest`, vendored because the build environment
//! cannot reach crates.io. It keeps the parts this workspace's property
//! tests rely on — [`Strategy`] with `prop_map`, range/tuple/`Just`/vec
//! strategies, `prop_oneof!`, the `proptest!` macro with
//! `#![proptest_config(..)]`, and `prop_assume!`/`prop_assert!`/
//! `prop_assert_eq!` — over a deterministic SplitMix64 generator.
//!
//! Differences from real proptest, by design:
//! - **no shrinking**: a failing case reports its case index and the
//!   fixed RNG seed, which reproduces exactly (generation is
//!   deterministic), instead of a minimised counterexample;
//! - **fixed entropy**: every run uses the same seed, so CI results are
//!   stable run-to-run.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between several boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_index(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for core::ops::Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end - self.start) as u64;
                        self.start + (rng.next_u64() % span) as $t
                    }
                }
                impl Strategy for core::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range strategy");
                        let span = (hi - lo) as u64 + 1;
                        lo + (rng.next_u64() % span) as $t
                    }
                }
            )*
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {
            $(
                impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                    type Value = ($($s::Value,)+);
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.generate(rng),)+)
                    }
                }
            )*
        };
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything usable as a vec length specification.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.gen_index(self.end - self.start)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            *self.start() + rng.gen_index(*self.end() - *self.start() + 1)
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Vec of `size.pick()` values drawn from `element` (proptest's
    /// `collection::vec`).
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Fixed-seed constructor: every test run draws the same sequence.
        pub fn deterministic() -> Self {
            Self(0x9e3779b97f4a7c15)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform index in `0..n` (`n > 0`).
        pub fn gen_index(&mut self, n: usize) -> usize {
            assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Runner configuration (`ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered this case out; it doesn't count.
        Reject,
        /// A `prop_assert*!` failed with this message.
        Fail(String),
    }
}

/// `ProptestConfig` under its public name.
pub use test_runner::Config as ProptestConfig;

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Filter out the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Assert within a proptest case; failure reports instead of panicking
/// so the runner can attach case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion within a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Inequality assertion within a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(32).saturating_add(256),
                        "proptest: too many prop_assume! rejections ({} attempts for {} cases)",
                        attempts,
                        config.cases,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case #{} (deterministic seed) failed:\n{}",
                                attempts, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, Vec<u8>)> {
        (1u32..10, crate::collection::vec(0u8..255, 1..8)).prop_map(|(a, v)| (a * 2, v))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..7, y in 0u64..5) {
            prop_assert!((3..7).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn oneof_and_assume(k in prop_oneof![Just(1usize), Just(4), Just(16)]) {
            prop_assume!(k != 1);
            prop_assert!(k == 4 || k == 16);
            prop_assert_eq!(k % 4, 0);
        }

        #[test]
        fn mapped_tuples(p in arb_pair()) {
            let (a, v) = p;
            prop_assert_eq!(a % 2, 0);
            prop_assert!(!v.is_empty() && v.len() < 8);
        }
    }
}
