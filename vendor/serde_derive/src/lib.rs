//! Offline stand-in for `serde_derive`, written against `proc_macro` alone
//! (no `syn`/`quote` — the build environment cannot reach crates.io).
//!
//! Supports exactly the shapes the workspace derives on:
//! - structs with named fields → JSON objects `{"field":value,...}`
//! - fieldless enums → JSON strings `"VariantName"`
//!
//! Anything else (tuple structs, enums with payloads, generics) is a
//! compile error pointing here, which is the desired failure mode for a
//! vendored stub: extend it when a new shape appears.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

enum Shape {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let shape = parse(input)?;
    let code = match shape {
        Shape::Struct { name, fields } => {
            let mut body = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n\
                     ::serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            body.push_str("out.push('}');");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"\\\"{v}\\\"\",\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
                         out.push_str(match self {{\n{arms}}});\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .map_err(|e| format!("serde_derive stub generated invalid code: {e:?}"))
}

fn parse(input: TokenStream) -> Result<Shape, String> {
    let mut iter = input.into_iter().peekable();
    // Skip attributes, doc comments and visibility until `struct`/`enum`.
    let mut kind = None;
    for tt in iter.by_ref() {
        match &tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(s);
                    break;
                }
                // `pub`, `crate` path segments etc. — skip.
            }
            TokenTree::Punct(_) | TokenTree::Group(_) | TokenTree::Literal(_) => {}
        }
    }
    let kind = kind.ok_or_else(|| "expected struct or enum".to_string())?;
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    // Reject generics: the workspace never derives on generic types.
    if matches!(&iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub cannot derive Serialize for generic type {name}"
        ));
    }
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => continue,
            None => {
                return Err(format!(
                    "serde stub cannot derive Serialize for {name}: no braced body (tuple/unit types unsupported)"
                ))
            }
        }
    };
    if kind == "struct" {
        Ok(Shape::Struct {
            name,
            fields: parse_named_fields(body)?,
        })
    } else {
        Ok(Shape::Enum {
            name,
            variants: parse_unit_variants(body)?,
        })
    }
}

/// Field names of a named-field struct body. Commas inside angle brackets
/// (e.g. `HashMap<K, V>`) do not split fields; groups are opaque tokens so
/// only `<`/`>` depth needs tracking. The `>` of a `->` (fn-pointer return
/// type) is not a closing bracket, and a stray `>` at depth 0 is a hard
/// error rather than silent field loss.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut at_field_start = true;
    let mut prev_was_minus = false;
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        let arrow_close =
            prev_was_minus && matches!(&tt, TokenTree::Punct(p) if p.as_char() == '>');
        prev_was_minus = matches!(&tt, TokenTree::Punct(p) if p.as_char() == '-');
        match &tt {
            TokenTree::Punct(_) if arrow_close => {}
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                if angle_depth < 0 {
                    return Err(
                        "serde stub: unbalanced `>` in a field type; this type syntax is unsupported"
                            .to_string(),
                    );
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                at_field_start = true;
            }
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Field attribute or doc comment: consume the bracket group.
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    iter.next();
                }
            }
            TokenTree::Ident(id) if at_field_start && angle_depth == 0 => {
                let s = id.to_string();
                if s == "pub" {
                    // Visibility; a following `(crate)` group is skipped as
                    // a generic token.
                    continue;
                }
                // This ident must be the field name; a `:` must follow.
                match iter.peek() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {
                        fields.push(s);
                        at_field_start = false;
                    }
                    _ => {
                        return Err(format!(
                            "serde stub: unsupported struct field syntax near `{s}`"
                        ))
                    }
                }
            }
            _ => {}
        }
    }
    Ok(fields)
}

/// Variant names of a fieldless enum body.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut at_variant_start = true;
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => at_variant_start = true,
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    iter.next();
                }
            }
            TokenTree::Ident(id) if at_variant_start => {
                variants.push(id.to_string());
                at_variant_start = false;
                // Payload or discriminant after the name is unsupported.
                match iter.peek() {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                    Some(other) => {
                        return Err(format!(
                            "serde stub: enum variant {id} has a payload or discriminant ({other}), only fieldless enums are supported"
                        ))
                    }
                }
            }
            _ => {}
        }
    }
    Ok(variants)
}
