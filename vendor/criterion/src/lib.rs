//! Offline stand-in for `criterion`, vendored because the build
//! environment cannot reach crates.io. It mirrors the subset of the
//! criterion 0.5 API the workspace's benches use — `criterion_group!`
//! (struct form), `criterion_main!`, `Criterion`, `BenchmarkGroup`,
//! `Bencher`, `BenchmarkId`, `Throughput`, `black_box` — and actually
//! times the closures with `std::time::Instant`, printing a one-line
//! median per benchmark. No statistics, plotting or comparison: the goal
//! is that `cargo bench` produces honest coarse numbers and
//! `cargo bench --no-run` compiles every target.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes processed per iteration (decimal multiple display).
    BytesDecimal(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Filled in by `iter`: (median, iters_per_sample).
    result: Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Time `routine`, storing a median-of-samples estimate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, measuring the
        // per-iteration cost to size the real samples.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || iters == 0 {
            black_box(routine());
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(iters as u32)
            .unwrap_or_default();

        // Size each sample so the whole measurement fits the budget.
        let samples = self.config.sample_size.max(2) as u64;
        let budget_per_sample = self.config.measurement_time / samples as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1024
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
        };

        let mut times: Vec<Duration> = Vec::with_capacity(samples as usize);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            times.push(t.elapsed() / iters_per_sample as u32);
        }
        times.sort();
        self.result = Some((times[times.len() / 2], iters_per_sample));
    }
}

/// Measurement configuration shared by a `Criterion` instance.
#[derive(Debug, Clone)]
struct Config {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            sample_size: 10,
        }
    }
}

/// The benchmark manager. Mirrors criterion's builder API.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Set the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Set the number of samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// When invoked via `cargo test`/CI smoke mode, shrink budgets.
    pub fn configure_from_args(self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(1))
                .sample_size(2)
        } else {
            self
        }
    }

    /// Open a named group of related benchmarks. The group gets its own
    /// copy of the config, so group-level overrides don't leak into
    /// later groups (matching real criterion's scoping).
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup {
            config: self.config.clone(),
            name: name.into(),
            throughput: None,
        }
    }

    /// Single benchmark without a group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = id.to_string();
        run_one(&self.config, &name, None, f);
        self
    }
}

/// A group of related benchmarks sharing a throughput annotation and a
/// group-scoped copy of the measurement config.
pub struct BenchmarkGroup {
    config: Config,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Annotate per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Override the measurement time for this group only.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Override the warm-up time for this group only.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&self.config, &full, self.throughput, f);
        self
    }

    /// Benchmark a closure parameterised by `input`.
    pub fn bench_with_input<I, F, T: ?Sized>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher<'_>, &T),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&self.config, &full, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (report flushing is per-bench here, so a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    config: &Config,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        config,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((median, _)) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) if !median.is_zero() => {
                    format!("  ({:.2e} elem/s)", n as f64 / median.as_secs_f64())
                }
                Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) if !median.is_zero() => {
                    format!("  ({:.2e} B/s)", n as f64 / median.as_secs_f64())
                }
                _ => String::new(),
            };
            println!("bench: {name:<50} {median:>12.2?}/iter{rate}");
        }
        None => println!("bench: {name:<50} (no measurement: Bencher::iter never called)"),
    }
}

/// Declare a group of benchmark functions. Supports both the plain list
/// form and the `name/config/targets` struct form criterion offers.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
            .sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
