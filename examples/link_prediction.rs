//! Link prediction with Node2Vec embeddings — the paper's §6.7 case study
//! as a runnable example.
//!
//! ```text
//! cargo run --release --example link_prediction
//! ```
//!
//! Pipeline: hold out 15% of edges → Node2Vec walks (CPU baseline *and*
//! simulated accelerator) → skip-gram embeddings → cosine scoring →
//! ROC-AUC on held-out edges vs non-edges, plus the Fig. 18 style time
//! breakdown.

use lightrw::prelude::*;
use lightrw_embed::{run_case_study, SgnsConfig};

fn main() {
    // A community-structured graph (stochastic-block-like): communities
    // are what embeddings can learn, and what link prediction exploits.
    let graph = community_graph(24, 48, 2024);
    println!(
        "graph: {} vertices, {} edges ({} communities)",
        graph.num_vertices(),
        graph.num_edges(),
        24
    );

    let sgns = SgnsConfig {
        dim: 24,
        window: 4,
        negatives: 5,
        epochs: 1,
        ..Default::default()
    };
    let report = run_case_study(&graph, 60, sgns, 7);

    println!("\nlink prediction quality (ROC-AUC on held-out edges):");
    println!("  CPU walks          : {:.3}", report.auc_cpu);
    println!("  accelerator walks  : {:.3}", report.auc_accelerated);
    println!("  ({} held-out positive pairs)", report.test_pairs);

    println!("\nFig. 18-style execution breakdown:");
    let row = |name: &str, t: &lightrw_embed::PhaseTimes| {
        println!(
            "  {name:<16} transfer {:>9.3} ms | walk {:>9.3} ms | result {:>9.3} ms | learn {:>9.3} ms | total {:>9.3} ms",
            t.graph_transfer_s * 1e3,
            t.random_walk_s * 1e3,
            t.result_transfer_s * 1e3,
            t.learning_s * 1e3,
            t.total_s() * 1e3
        );
    };
    row("SNAP (CPU)", &report.snap);
    row("SNAP w/LightRW", &report.accelerated);

    let ratio = report.snap.total_s() / report.accelerated.total_s();
    println!("\nend-to-end ratio: {ratio:.2}x (paper: ~2x — the walk phase collapses)");
}

/// Dense communities bridged sparsely.
fn community_graph(communities: usize, size: usize, seed: u64) -> Graph {
    use lightrw::rng::{Rng, SplitMix64};
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::undirected().num_vertices(communities * size);
    for c in 0..communities {
        let base = (c * size) as u32;
        for i in 0..size as u32 {
            for j in (i + 1)..size as u32 {
                if rng.gen_bool(0.25) {
                    b = b.edge(base + i, base + j);
                }
            }
        }
        let next = (((c + 1) % communities) * size) as u32;
        for _ in 0..4 {
            let u = base + rng.gen_range(size as u64) as u32;
            let v = next + rng.gen_range(size as u64) as u32;
            b = b.edge(u, v);
        }
    }
    b.build()
}
