//! Quickstart: run Node2Vec on the simulated LightRW accelerator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a liveJournal-like power-law graph (random weights, as in the
//! paper's setup), issues one 20-step Node2Vec query per vertex, runs them
//! on the 4-instance Alveo U250 model, and prints the end-to-end report:
//! walks, simulated kernel time, memory-system behaviour and the PCIe
//! breakdown.

use lightrw::prelude::*;

fn main() {
    // 1. A graph. Stand-ins reproduce a real dataset's degree profile at a
    //    chosen scale; lightrw::graph::io can load real SNAP edge lists.
    let graph = DatasetProfile::livejournal().stand_in(14, 42);
    println!(
        "graph: {} vertices, {} edges, avg degree {:.1}, max degree {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.avg_degree(),
        graph.max_degree()
    );

    // 2. A walk application: Node2Vec with the paper's p = 2, q = 0.5.
    let app = Node2Vec::paper_params();

    // 3. The paper's workload: one shuffled query per non-isolated vertex.
    let queries = QuerySet::per_nonisolated_vertex(&graph, 20, 7);
    println!("workload: {} queries x 20 steps", queries.len());

    // 4. Deploy on the default U250 model (k=16, b1+b32, 2^12 DAC, 4
    //    instances) and run end to end.
    let accel = LightRw::new(&graph, &app, LightRwConfig::default());
    let report = accel.run(&queries);

    // 5. What came back: real sampled walks...
    let m = report.metrics();
    println!("\nfirst three walks:");
    for i in 0..3 {
        println!("  query {i}: {:?}", report.sim.results.path(i));
    }

    // ...and the accelerator-model report.
    println!("\nsimulated kernel : {}", pretty(m.kernel_seconds));
    println!(
        "end-to-end       : {} ({:.1}% PCIe)",
        pretty(m.end_to_end_seconds),
        m.pcie_fraction * 100.0
    );
    println!("throughput       : {:.1} M steps/s", m.steps_per_sec / 1e6);
    println!("row-cache hits   : {:.1}%", m.cache_hit_ratio * 100.0);
    println!("DRAM valid data  : {:.1}%", m.dram_valid_ratio * 100.0);
    println!(
        "resources        : {:.1}% LUTs, {:.1}% BRAM, {:.1}% DSP @ {:.0} MHz",
        report.resources.luts_pct,
        report.resources.brams_pct,
        report.resources.dsps_pct,
        report.resources.freq_mhz
    );
}

fn pretty(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.2} ms", s * 1e3)
    }
}
