//! MetaPath random walks on a heterogeneous bibliographic graph.
//!
//! ```text
//! cargo run --release --example metapath_knowledge_graph
//! ```
//!
//! The motivating use case of MetaPath (paper §1-2): mining typed
//! relationships in a knowledge graph. We build a small author/paper/venue
//! network by hand with typed edges, then sample Author-Paper-Venue-Paper-
//! Author ("APVPA") walks — the classic co-publication metapath — and show
//! that every sampled path obeys the relation sequence.

use lightrw::prelude::*;

// Relation types.
const WRITES: u8 = 0; // author  -> paper
const WRITTEN_BY: u8 = 1; // paper -> author
const PUBLISHED_IN: u8 = 2; // paper -> venue
const PUBLISHES: u8 = 3; // venue  -> paper

// Vertex layout: authors 0..4, papers 4..10, venues 10..12.
const AUTHORS: [&str; 4] = ["ada", "grace", "barbara", "edsger"];
const PAPERS: [&str; 6] = ["p-csr", "p-walk", "p-fpga", "p-wrs", "p-cache", "p-burst"];
const VENUES: [&str; 2] = ["SIGMOD", "VLDB"];

fn name_of(v: u32) -> &'static str {
    match v {
        0..=3 => AUTHORS[v as usize],
        4..=9 => PAPERS[v as usize - 4],
        _ => VENUES[v as usize - 10],
    }
}

fn main() {
    // Authorship (author, paper) and publication (paper, venue) facts.
    let authorship: &[(u32, u32)] = &[
        (0, 4),
        (0, 5),
        (1, 5),
        (1, 6),
        (1, 7),
        (2, 6),
        (2, 8),
        (3, 8),
        (3, 9),
        (0, 9),
    ];
    let publication: &[(u32, u32)] = &[(4, 10), (5, 10), (6, 11), (7, 10), (8, 11), (9, 11)];

    let mut b = GraphBuilder::directed().num_vertices(12);
    for &(a, p) in authorship {
        b = b
            .labeled_edge(a, p, 1, WRITES)
            .labeled_edge(p, a, 1, WRITTEN_BY);
    }
    for &(p, v) in publication {
        b = b
            .labeled_edge(p, v, 1, PUBLISHED_IN)
            .labeled_edge(v, p, 1, PUBLISHES);
    }
    let graph = b.build();

    // The APVPA metapath: writes, published-in, publishes, written-by.
    let apvpa = MetaPath::new(vec![WRITES, PUBLISHED_IN, PUBLISHES, WRITTEN_BY]);

    // Many walks from every author.
    let starts: Vec<u32> = (0..4).flat_map(|a| std::iter::repeat_n(a, 8)).collect();
    let queries = QuerySet::from_starts(starts, 4);

    let engine = ReferenceEngine::new(&graph, &apvpa, SamplerKind::ParallelWrs { k: 4 }, 99);
    let walks = engine.run(&queries);

    println!("APVPA metapath walks (author -> paper -> venue -> paper -> author):\n");
    let mut reached = 0;
    for path in walks.iter() {
        let pretty: Vec<&str> = path.iter().map(|&v| name_of(v)).collect();
        if path.len() == 5 {
            reached += 1;
            println!("  {}", pretty.join(" -> "));
        }
        // Every hop must match the declared relation, whatever the length.
        lightrw::walker::path::validate_path(&graph, &apvpa, path)
            .expect("a sampled path violated the metapath");
    }
    println!(
        "\n{reached}/{} walks completed the full metapath; every hop verified against the relation sequence.",
        walks.len()
    );

    // The same workload on the accelerator model, for timing.
    let report = LightRw::new(&graph, &apvpa, LightRwConfig::single_instance()).run(&queries);
    println!(
        "accelerator model: {} cycles ({:.2} µs at 300 MHz) for {} steps",
        report.sim.cycles,
        report.sim.seconds * 1e6,
        report.sim.steps
    );
}
