//! Design-space exploration: tune the accelerator configuration for a
//! workload and check it still fits the board.
//!
//! ```text
//! cargo run --release --example accelerator_tuning
//! ```
//!
//! Sweeps the three configuration axes the paper evaluates — WRS
//! parallelism `k` (Fig. 10a), dynamic burst strategy (Fig. 12) and row
//! cache size (Fig. 11) — on one workload, reporting simulated runtime
//! next to the resource-model cost of each point. This is the
//! "capacity-planning" workflow a LightRW user would run before synthesis.

use lightrw::platform::AppKind;
use lightrw::prelude::*;
use lightrw::resources;

fn main() {
    let graph = DatasetProfile::orkut().stand_in(13, 5);
    let app = MetaPath::new(vec![0, 1, 0, 1, 0]);
    let queries = QuerySet::per_nonisolated_vertex(&graph, 5, 9);
    println!(
        "workload: MetaPath x{} queries on an orkut-like graph ({} edges)\n",
        queries.len(),
        graph.num_edges()
    );

    let base = LightRwConfig::single_instance();
    let run = |cfg: LightRwConfig| {
        let sim = LightRwSim::new(&graph, &app, cfg).run(&queries);
        let res = resources::estimate(&cfg, AppKind::MetaPath);
        (sim, res)
    };

    println!("-- WRS parallelism k (burst b1+b32, cache 2^12) --");
    println!(
        "{:<6} {:>12} {:>14} {:>8} {:>8}",
        "k", "cycles", "Msteps/s(sim)", "LUT%", "DSP%"
    );
    for k in [1usize, 2, 4, 8, 16, 32] {
        let (sim, res) = run(LightRwConfig { k, ..base });
        println!(
            "{:<6} {:>12} {:>14.2} {:>8.2} {:>8.2}",
            k,
            sim.cycles,
            sim.steps_per_sec() / 1e6,
            res.luts_pct,
            res.dsps_pct
        );
    }

    println!("\n-- dynamic burst strategy (k=16) --");
    println!(
        "{:<8} {:>12} {:>10} {:>12}",
        "strategy", "cycles", "speedup", "valid data"
    );
    let baseline = run(LightRwConfig {
        burst: BurstConfig::short_only(),
        ..base
    })
    .0;
    for long in [0u64, 2, 8, 16, 32, 64] {
        let cfg = LightRwConfig {
            burst: if long == 0 {
                BurstConfig::short_only()
            } else {
                BurstConfig::with_long(long)
            },
            ..base
        };
        let (sim, _) = run(cfg);
        println!(
            "{:<8} {:>12} {:>9.2}x {:>11.1}%",
            cfg.burst.name(),
            sim.cycles,
            baseline.cycles as f64 / sim.cycles as f64,
            sim.dram_total().valid_ratio() * 100.0
        );
    }

    println!("\n-- row cache size (k=16, b1+b32) --");
    println!(
        "{:<10} {:>12} {:>10} {:>8}",
        "entries", "cycles", "hit rate", "BRAM%"
    );
    for bits in [8u32, 10, 12, 14, 16] {
        let (sim, res) = run(LightRwConfig {
            cache_index_bits: bits,
            ..base
        });
        println!(
            "2^{bits:<8} {:>12} {:>9.1}% {:>8.2}",
            sim.cycles,
            sim.cache_total().hit_ratio() * 100.0,
            res.brams_pct
        );
    }

    println!("\npaper configuration (k=16, b1+b32, 2^12) balances all three axes.");
}
