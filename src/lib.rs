pub use lightrw;
pub use lightrw_embed;
